//! The discrete-event serving loop.
//!
//! A single PIXEL fabric serves one batch at a time. The simulation
//! advances event to event — the next arrival, the in-flight batch's
//! completion, or a batching-deadline expiry, whichever is earliest
//! (ties resolve completion-first, then deadline-before-arrival, making
//! the trajectory a pure function of the seed). Per-batch service time
//! and energy come from [`EvalContext`] through the pipeline-fill
//! batching model in `pixel_core::throughput` — the same `DesignModel`
//! backends behind every paper artifact, so EE/OE/OO serving curves are
//! comparable by construction.
//!
//! Instrumentation: the run executes under a `serve/sim` span and
//! counts `serve.arrivals`, `serve.admitted`, `serve.shed`,
//! `serve.dispatches` and `serve.completions`; dispatched batch sizes
//! feed the `serve.batch_size` histogram. Beyond the flat counters,
//! every request emits typed lifecycle events
//! ([`crate::flightrec::ServeEvent`]) into a bounded
//! [`FlightRecorder`] — and through the `pixel-obs` trace sink when one
//! is installed — while a [`WindowSeries`] folds the run into
//! fixed-virtual-time-grid bins and a [`LatencyBreakdown`] splits every
//! sojourn into queue wait and service time per tenant and per network.

use crate::arrivals::{Request, RequestSource, Workload};
use crate::batching::{BatchPolicy, Decision};
use crate::flightrec::{FlightData, FlightRecorder, LatencyBreakdown, ServeEvent};
use crate::percentile::LatencyHistogram;
use crate::queue::{AdmissionQueue, ShedPolicy};
use crate::report::{LatencyPercentiles, NetworkStats, ServeReport, TenantStats};
use crate::window::WindowSeries;
use pixel_core::config::AcceleratorConfig;
use pixel_core::model::EvalContext;
use pixel_core::throughput;
use pixel_units::{Energy, Time};

/// Parameters of one serving simulation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServeConfig {
    /// The accelerator under load.
    pub accel: AcceleratorConfig,
    /// Batch-formation policy.
    pub policy: BatchPolicy,
    /// Admission-queue bound.
    pub queue_capacity: usize,
    /// What to shed when the queue is full.
    pub shed: ShedPolicy,
    /// Offered arrival rate \[requests/s\].
    pub rate_hz: f64,
    /// Arrivals to generate before draining.
    pub requests: usize,
    /// Seed of the arrival process.
    pub seed: u64,
    /// Nominal bin count of the windowed time-series grid (the grid
    /// coarsens beyond the expected makespan, never past `2×` this).
    pub window_bins: usize,
}

impl ServeConfig {
    /// A serving setup with the defaults the artifact sweep uses:
    /// dynamic batching up to 8, a 256-deep drop-newest queue, a
    /// 64-bin metrics grid.
    #[must_use]
    pub fn new(accel: AcceleratorConfig, rate_hz: f64, requests: usize, seed: u64) -> Self {
        Self {
            accel,
            policy: BatchPolicy::Dynamic {
                max_size: 8,
                deadline: Time::ZERO,
            },
            queue_capacity: 256,
            shed: ShedPolicy::DropNewest,
            rate_hz,
            requests,
            seed,
            window_bins: 64,
        }
    }
}

/// Per-network service quantities, evaluated once per simulation.
struct ServiceModel {
    reports: Vec<pixel_core::accelerator::NetworkReport>,
    static_power: pixel_units::Power,
}

impl ServiceModel {
    fn new(ctx: &EvalContext, workload: &Workload, accel: &AcceleratorConfig) -> Self {
        let reports = workload
            .networks()
            .iter()
            .map(|net| ctx.evaluate(accel, net))
            .collect();
        let static_power = accel.design.model().static_power(accel);
        Self {
            reports,
            static_power: static_power.laser_wall_plug + static_power.thermal_tuning,
        }
    }

    /// Service time and dynamic energy of a `batch`-sized dispatch of
    /// network `network`.
    fn batch(&self, network: usize, batch: usize) -> (Time, Energy) {
        let report = &self.reports[network];
        let latency = throughput::batch_latency(report, batch);
        #[allow(clippy::cast_precision_loss)]
        let energy = report.total_energy() * batch as f64;
        (latency, energy)
    }
}

/// Virtual seconds → integer nanoseconds (round-to-nearest, monotone).
#[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
fn ns(t: f64) -> u64 {
    (t * 1e9).round() as u64
}

/// The in-flight batch.
struct InFlight {
    completes_at: f64,
    started_at: f64,
    id: u64,
    batch: Vec<Request>,
}

/// Mutable simulation state shared by the event handlers.
struct SimState<'a> {
    clock: f64,
    queue: AdmissionQueue,
    server: Option<InFlight>,
    service: &'a ServiceModel,
    policy: BatchPolicy,
    overall: LatencyBreakdown,
    tenant_lat: Vec<LatencyBreakdown>,
    network_lat: Vec<LatencyBreakdown>,
    tenant_completed: Vec<u64>,
    network_completed: Vec<u64>,
    completed: u64,
    shed: u64,
    dispatches: u64,
    batch_seq: u64,
    batched_total: u64,
    busy_time: f64,
    dynamic_energy: Energy,
    last_completion: f64,
    recorder: FlightRecorder,
    spill: bool,
    windows: WindowSeries,
}

impl SimState<'_> {
    /// Records one lifecycle event in the flight recorder and, when a
    /// trace sink is active, spills it as JSONL.
    fn emit(&mut self, event: ServeEvent) {
        if self.spill {
            pixel_obs::trace_event(&event.to_json());
        }
        self.recorder.record(event);
    }

    fn admit(&mut self, request: Request) {
        self.clock = self.clock.max(request.arrival);
        pixel_obs::add("serve.arrivals", 1);
        self.windows.count_arrival(self.clock);
        self.emit(ServeEvent::Arrive {
            t_ns: ns(self.clock),
            id: request.id,
            tenant: request.tenant,
            network: request.network,
        });
        match self.queue.offer(request.arrival, request) {
            Some(victim) => {
                pixel_obs::add("serve.shed", 1);
                self.windows.count_shed(self.clock);
                self.shed += 1;
                self.emit(ServeEvent::Shed {
                    t_ns: ns(self.clock),
                    id: victim.id,
                    tenant: victim.tenant,
                    network: victim.network,
                });
                if victim.id != request.id {
                    // Drop-oldest: the newcomer took the evicted head's
                    // place.
                    pixel_obs::add("serve.admitted", 1);
                    self.emit(ServeEvent::Enqueue {
                        t_ns: ns(self.clock),
                        id: request.id,
                        depth: self.queue.depth(),
                    });
                }
            }
            None => {
                pixel_obs::add("serve.admitted", 1);
                self.emit(ServeEvent::Enqueue {
                    t_ns: ns(self.clock),
                    id: request.id,
                    depth: self.queue.depth(),
                });
            }
        }
        self.windows.set_depth(self.clock, self.queue.depth());
    }

    fn dispatch(&mut self) {
        let batch = self.queue.take_batch(self.clock, self.policy.max_batch());
        assert!(!batch.is_empty(), "dispatch on an empty queue");
        let (latency, energy) = self.service.batch(batch[0].network, batch.len());
        pixel_obs::add("serve.dispatches", 1);
        #[allow(clippy::cast_precision_loss)]
        pixel_obs::observe("serve.batch_size", batch.len() as f64);
        let id = self.batch_seq;
        self.batch_seq += 1;
        self.dispatches += 1;
        self.batched_total += batch.len() as u64;
        self.busy_time += latency.value();
        self.dynamic_energy += energy;
        let completes_at = self.clock + latency.value();
        self.windows.count_dispatch(self.clock, batch.len() as u64);
        self.windows.set_depth(self.clock, self.queue.depth());
        self.windows.add_busy(self.clock, completes_at);
        self.windows
            .add_energy(self.clock, completes_at, energy.value());
        self.emit(ServeEvent::BatchFormed {
            t_ns: ns(self.clock),
            batch: id,
            network: batch[0].network,
            size: batch.len(),
        });
        self.emit(ServeEvent::ServiceStart {
            t_ns: ns(self.clock),
            batch: id,
        });
        self.server = Some(InFlight {
            completes_at,
            started_at: self.clock,
            id,
            batch,
        });
    }

    fn complete(&mut self) {
        // lint:allow(P002) complete() only runs with an in-flight batch; silent recovery would corrupt the clock
        let flight = self.server.take().expect("completion without a batch");
        self.clock = flight.completes_at;
        self.last_completion = flight.completes_at;
        self.windows
            .count_completions(flight.completes_at, flight.batch.len() as u64);
        self.emit(ServeEvent::ServiceEnd {
            t_ns: ns(flight.completes_at),
            batch: flight.id,
            size: flight.batch.len(),
        });
        for request in &flight.batch {
            // Integer nanoseconds: deterministic bucketing, ns
            // resolution. The sojourn rounds the float difference
            // directly, and the split is exact by construction:
            // rounding is monotone (started_at ≤ completes_at), so
            // wait_ns ≤ sojourn_ns and wait + service == sojourn.
            let sojourn_ns = ns(flight.completes_at - request.arrival);
            let wait_ns = ns(flight.started_at - request.arrival);
            let service_ns = sojourn_ns - wait_ns;
            self.overall.record(wait_ns, service_ns);
            self.tenant_lat[request.tenant].record(wait_ns, service_ns);
            self.network_lat[request.network].record(wait_ns, service_ns);
            self.tenant_completed[request.tenant] += 1;
            self.network_completed[request.network] += 1;
            self.completed += 1;
            pixel_obs::add("serve.completions", 1);
        }
    }
}

fn percentiles(histogram: &LatencyHistogram) -> LatencyPercentiles {
    let at = |q: f64| {
        Time::from_nanos({
            #[allow(clippy::cast_precision_loss)]
            {
                histogram.percentile(q) as f64
            }
        })
    };
    LatencyPercentiles {
        p50: at(0.50),
        p95: at(0.95),
        p99: at(0.99),
        p999: at(0.999),
        max: Time::from_nanos({
            #[allow(clippy::cast_precision_loss)]
            {
                histogram.max() as f64
            }
        }),
    }
}

/// Runs one serving simulation to completion (all arrivals generated,
/// queue drained, last batch finished) and reports the measurements.
///
/// Equivalent to [`simulate_with_flightrec`] with a zero-capacity event
/// ring (events are still counted and spilled to an installed trace
/// sink, never buffered).
///
/// Deterministic: the report is a pure function of `(workload, the
/// context's overrides, config)` — bitwise identical across runs,
/// machines, and sweep worker counts.
///
/// # Panics
///
/// Panics if `config.requests` is zero.
#[must_use]
pub fn simulate(workload: &Workload, ctx: &EvalContext, config: &ServeConfig) -> ServeReport {
    simulate_with_flightrec(workload, ctx, config, 0).0
}

/// Runs one serving simulation with a `event_capacity`-deep flight
/// recorder and returns the report together with the recorded
/// [`FlightData`] (event ring, per-kind counts, and the full
/// wait/service latency decomposition).
///
/// # Panics
///
/// Panics if `config.requests` is zero.
#[must_use]
pub fn simulate_with_flightrec(
    workload: &Workload,
    ctx: &EvalContext,
    config: &ServeConfig,
    event_capacity: usize,
) -> (ServeReport, FlightData) {
    let _span = pixel_obs::span("serve/sim");
    assert!(config.requests > 0, "need at least one request");
    let service = ServiceModel::new(ctx, workload, &config.accel);
    let mut source =
        RequestSource::new(workload, config.rate_hz, config.requests, config.seed).peekable();
    let tenants = workload.tenants().len();
    let networks = workload.networks().len();
    let window_bins = config.window_bins.max(2);
    #[allow(clippy::cast_precision_loss)]
    let expected_makespan = config.requests as f64 / config.rate_hz;
    #[allow(clippy::cast_precision_loss)]
    let base_width = (expected_makespan / window_bins as f64).max(1e-9);
    let mut state = SimState {
        clock: 0.0,
        queue: AdmissionQueue::new(config.queue_capacity, config.shed),
        server: None,
        service: &service,
        policy: config.policy,
        overall: LatencyBreakdown::default(),
        tenant_lat: vec![LatencyBreakdown::default(); tenants],
        network_lat: vec![LatencyBreakdown::default(); networks],
        tenant_completed: vec![0; tenants],
        network_completed: vec![0; networks],
        completed: 0,
        shed: 0,
        dispatches: 0,
        batch_seq: 0,
        batched_total: 0,
        busy_time: 0.0,
        dynamic_energy: Energy::ZERO,
        last_completion: 0.0,
        recorder: FlightRecorder::new(event_capacity),
        spill: pixel_obs::enabled() && pixel_obs::has_trace(),
        windows: WindowSeries::new(base_width, window_bins * 2),
    };

    loop {
        if let Some(flight) = &state.server {
            // Busy: the next event is the completion or an earlier arrival.
            let completes_at = flight.completes_at;
            match source.peek() {
                Some(next) if next.arrival < completes_at => {
                    if let Some(request) = source.next() {
                        state.admit(request);
                    }
                }
                _ => state.complete(),
            }
            continue;
        }
        // Idle server: consult the batching policy.
        match state.policy.decide(&state.queue, state.clock) {
            Decision::Dispatch => state.dispatch(),
            Decision::HoldUntil(expiry) => match source.peek() {
                Some(next) if next.arrival < expiry => {
                    if let Some(request) = source.next() {
                        state.admit(request);
                    }
                }
                _ => {
                    // Deadline fires (or the stream ended): dispatch what
                    // is waiting.
                    state.clock = state.clock.max(expiry);
                    state.dispatch();
                }
            },
            Decision::Hold => match source.next() {
                Some(request) => state.admit(request),
                None if !state.queue.is_empty() => {
                    // Stream over: flush remaining (possibly partial)
                    // batches so every admitted request completes.
                    state.dispatch();
                }
                None => break,
            },
        }
    }

    let makespan = state.last_completion.max(state.clock);
    state.windows.finish(makespan);
    let arrivals = config.requests as u64;
    #[allow(clippy::cast_precision_loss)]
    let achieved_hz = if makespan > 0.0 {
        state.completed as f64 / makespan
    } else {
        0.0
    };
    #[allow(clippy::cast_precision_loss)]
    let mean_batch = if state.dispatches > 0 {
        state.batched_total as f64 / state.dispatches as f64
    } else {
        0.0
    };
    let static_energy = service.static_power * Time::new(makespan);
    let total_energy = state.dynamic_energy + static_energy;
    #[allow(clippy::cast_precision_loss)]
    let energy_per_inference = if state.completed > 0 {
        total_energy / state.completed as f64
    } else {
        Energy::ZERO
    };
    let tenant_stats = workload
        .tenants()
        .iter()
        .enumerate()
        .map(|(t, tenant)| TenantStats {
            name: tenant.name.clone(),
            completed: state.tenant_completed[t],
            p95: percentiles(&state.tenant_lat[t].sojourn).p95,
            wait: percentiles(&state.tenant_lat[t].wait),
            service: percentiles(&state.tenant_lat[t].service),
        })
        .collect();
    let network_stats = workload
        .networks()
        .iter()
        .enumerate()
        .map(|(n, net)| NetworkStats {
            name: net.name().to_owned(),
            completed: state.network_completed[n],
            wait: percentiles(&state.network_lat[n].wait),
            service: percentiles(&state.network_lat[n].service),
        })
        .collect();
    pixel_obs::gauge("serve.utilization", state.busy_time / makespan.max(1e-30));
    let report = ServeReport {
        config: config.accel,
        policy: config.policy.label(),
        offered_hz: config.rate_hz,
        achieved_hz,
        arrivals,
        completed: state.completed,
        dropped: state.shed,
        latency: percentiles(&state.overall.sojourn),
        queue_wait: percentiles(&state.overall.wait),
        service: percentiles(&state.overall.service),
        mean_batch,
        mean_queue_depth: state.queue.mean_depth(makespan),
        max_queue_depth: state.queue.max_depth(),
        utilization: state.busy_time / makespan.max(1e-30),
        makespan: Time::new(makespan),
        total_energy,
        energy_per_inference,
        tenants: tenant_stats,
        networks: network_stats,
        windows: state.windows.clone(),
    };
    let data = FlightData {
        recorder: state.recorder,
        overall: state.overall,
        tenants: state.tenant_lat,
        networks: state.network_lat,
    };
    (report, data)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pixel_core::config::Design;

    fn base_config(rate: f64) -> ServeConfig {
        ServeConfig::new(AcceleratorConfig::new(Design::Oo, 4, 16), rate, 400, 2026)
    }

    #[test]
    fn conservation_all_arrivals_complete_or_drop() {
        let workload = Workload::paper_mix();
        let ctx = EvalContext::new();
        for rate in [0.5, 2.0, 1_000.0] {
            let report = simulate(&workload, &ctx, &base_config(rate));
            assert_eq!(
                report.completed + report.dropped,
                report.arrivals,
                "rate {rate}"
            );
            assert!(report.completed > 0, "rate {rate}");
        }
    }

    #[test]
    fn low_load_latency_is_single_batch_service() {
        let workload = Workload::paper_mix();
        let ctx = EvalContext::new();
        // One request every 50 s against a fabric that serves ~1.7/s:
        // no queueing, every batch is a singleton, so p50 equals a
        // single-network service time (between the fastest and slowest
        // network in the mix).
        let report = simulate(&workload, &ctx, &base_config(0.02));
        assert!((report.mean_batch - 1.0).abs() < 1e-9);
        let singles: Vec<f64> = workload
            .networks()
            .iter()
            .map(|net| {
                ctx.batch_service(&base_config(0.02).accel, net, 1)
                    .latency
                    .value()
            })
            .collect();
        let lo = singles.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = singles.iter().copied().fold(0.0f64, f64::max);
        let p50 = report.latency.p50.value();
        assert!(
            p50 >= lo * 0.99 && p50 <= hi * 1.01,
            "p50 {p50} outside [{lo}, {hi}]"
        );
        assert_eq!(report.dropped, 0);
        // Uncontended: queue wait is negligible next to service time.
        assert!(report.queue_wait.p50 <= report.service.p50);
    }

    #[test]
    fn overload_sheds_and_saturates() {
        let workload = Workload::paper_mix();
        let ctx = EvalContext::new();
        // The OO fabric serves ~1.7 inf/s under this mix: 0.8/s is a
        // comfortable load, 1000/s buries it.
        let light = simulate(&workload, &ctx, &base_config(0.8));
        let crushed = simulate(&workload, &ctx, &base_config(1_000.0));
        assert!(crushed.dropped > 0, "overload must shed");
        assert!(crushed.utilization > 0.99, "overloaded server never idles");
        assert!(crushed.achieved_hz < crushed.offered_hz * 0.5);
        assert!(crushed.latency.p99 >= light.latency.p99);
        assert!(crushed.mean_batch > light.mean_batch);
        // Under overload the sojourn is dominated by queueing, not
        // service: the decomposition must show it.
        assert!(crushed.queue_wait.p50 > crushed.service.p50);
    }

    #[test]
    fn fixed_policy_flushes_partial_batches() {
        let workload = Workload::paper_mix();
        let ctx = EvalContext::new();
        let mut config = base_config(500.0);
        config.policy = BatchPolicy::Fixed { size: 8 };
        let report = simulate(&workload, &ctx, &config);
        assert_eq!(report.completed + report.dropped, report.arrivals);
        assert!(report.mean_batch > 1.0);
    }

    #[test]
    fn deadline_policy_bounds_head_waiting() {
        let workload = Workload::paper_mix();
        let ctx = EvalContext::new();
        let mut config = base_config(0.05);
        config.policy = BatchPolicy::Dynamic {
            max_size: 8,
            deadline: Time::from_millis(5.0),
        };
        let report = simulate(&workload, &ctx, &config);
        assert_eq!(report.completed, report.arrivals);
        // At one request every 20 s the fabric mostly idles; sojourn is
        // bounded by the deadline plus a few service times.
        let slowest = workload
            .networks()
            .iter()
            .map(|net| ctx.batch_service(&config.accel, net, 1).latency.value())
            .fold(0.0f64, f64::max);
        // Batches can hold several requests and one batch may wait behind
        // another; the bound is loose but real.
        assert!(
            report.latency.max.value() < 5e-3 + slowest * 20.0,
            "max {} vs bound {}",
            report.latency.max.value(),
            5e-3 + slowest * 20.0
        );
    }

    #[test]
    fn static_power_amortizes_worse_at_low_load() {
        let workload = Workload::paper_mix();
        let ctx = EvalContext::new();
        // Same request count at a lower rate stretches the makespan, so
        // the OO laser/heater wall-plug is amortized over fewer
        // inferences per second: energy/inference must rise.
        let slow = simulate(&workload, &ctx, &base_config(0.05));
        let fast = simulate(&workload, &ctx, &base_config(1.5));
        assert!(
            slow.energy_per_inference > fast.energy_per_inference,
            "slow {} vs fast {}",
            slow.energy_per_inference.as_millijoules(),
            fast.energy_per_inference.as_millijoules()
        );
    }

    #[test]
    fn simulation_is_deterministic() {
        let workload = Workload::paper_mix();
        let ctx = EvalContext::new();
        let a = simulate(&workload, &ctx, &base_config(3_000.0));
        let b = simulate(&workload, &ctx, &base_config(3_000.0));
        assert_eq!(a, b);
        let c = {
            let mut config = base_config(3_000.0);
            config.seed += 1;
            simulate(&workload, &ctx, &config)
        };
        assert_ne!(a.latency, c.latency, "different seed, different trace");
    }

    #[test]
    fn flightrec_event_stream_is_conserved() {
        let workload = Workload::paper_mix();
        let ctx = EvalContext::new();
        let (report, data) = simulate_with_flightrec(&workload, &ctx, &base_config(1_000.0), 128);
        let [arrive, enqueue, shed, formed, started, ended] = *data.recorder.counts();
        assert_eq!(arrive, report.arrivals);
        assert_eq!(shed, report.dropped);
        assert_eq!(enqueue + shed, report.arrivals);
        assert_eq!(formed, started);
        assert_eq!(started, ended);
        // The ring keeps only the tail but the counts are lossless.
        assert_eq!(data.recorder.events().len(), 128);
        assert_eq!(data.recorder.total(), data.recorder.dropped() + 128);
        // Virtual timestamps never regress within the buffered tail.
        let events = data.recorder.events();
        for pair in events.iter().zip(events.iter().skip(1)) {
            assert!(pair.0.t_ns() <= pair.1.t_ns());
        }
        // Decomposition totals match the report.
        assert_eq!(data.overall.count(), report.completed);
        assert_eq!(
            data.overall.wait.sum() + data.overall.service.sum(),
            data.overall.sojourn.sum()
        );
    }

    #[test]
    fn flightrec_does_not_perturb_the_report() {
        let workload = Workload::paper_mix();
        let ctx = EvalContext::new();
        let plain = simulate(&workload, &ctx, &base_config(800.0));
        let (recorded, _) = simulate_with_flightrec(&workload, &ctx, &base_config(800.0), 4096);
        assert_eq!(plain, recorded);
    }

    #[test]
    fn window_series_accounts_for_every_request() {
        let workload = Workload::paper_mix();
        let ctx = EvalContext::new();
        let report = simulate(&workload, &ctx, &base_config(2.0));
        let arrivals: u64 = report.windows.bins().iter().map(|b| b.arrivals).sum();
        let completions: u64 = report.windows.bins().iter().map(|b| b.completions).sum();
        let shed: u64 = report.windows.bins().iter().map(|b| b.shed).sum();
        assert_eq!(arrivals, report.arrivals);
        assert_eq!(completions, report.completed);
        assert_eq!(shed, report.dropped);
        let busy: f64 = report.windows.bins().iter().map(|b| b.busy).sum();
        assert!(
            (busy - report.utilization * report.makespan.value()).abs()
                < 1e-6 * report.makespan.value().max(1.0)
        );
    }
}
