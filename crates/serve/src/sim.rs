//! The discrete-event serving loop.
//!
//! A single PIXEL fabric serves one batch at a time. The simulation
//! advances event to event — the next arrival, the in-flight batch's
//! completion, or a batching-deadline expiry, whichever is earliest
//! (ties resolve completion-first, then deadline-before-arrival, making
//! the trajectory a pure function of the seed). Per-batch service time
//! and energy come from [`EvalContext`] through the pipeline-fill
//! batching model in `pixel_core::throughput` — the same `DesignModel`
//! backends behind every paper artifact, so EE/OE/OO serving curves are
//! comparable by construction.
//!
//! Instrumentation: the run executes under a `serve/sim` span and
//! counts `serve/arrivals`, `serve/admitted`, `serve/shed`,
//! `serve/dispatches` and `serve/completions`; dispatched batch sizes
//! feed the `serve/batch_size` histogram.

use crate::arrivals::{Request, RequestSource, Workload};
use crate::batching::{BatchPolicy, Decision};
use crate::percentile::LatencyHistogram;
use crate::queue::{AdmissionQueue, ShedPolicy};
use crate::report::{LatencyPercentiles, ServeReport, TenantStats};
use pixel_core::config::AcceleratorConfig;
use pixel_core::model::EvalContext;
use pixel_core::throughput;
use pixel_units::{Energy, Time};

/// Parameters of one serving simulation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServeConfig {
    /// The accelerator under load.
    pub accel: AcceleratorConfig,
    /// Batch-formation policy.
    pub policy: BatchPolicy,
    /// Admission-queue bound.
    pub queue_capacity: usize,
    /// What to shed when the queue is full.
    pub shed: ShedPolicy,
    /// Offered arrival rate \[requests/s\].
    pub rate_hz: f64,
    /// Arrivals to generate before draining.
    pub requests: usize,
    /// Seed of the arrival process.
    pub seed: u64,
}

impl ServeConfig {
    /// A serving setup with the defaults the artifact sweep uses:
    /// dynamic batching up to 8, a 256-deep drop-newest queue.
    #[must_use]
    pub fn new(accel: AcceleratorConfig, rate_hz: f64, requests: usize, seed: u64) -> Self {
        Self {
            accel,
            policy: BatchPolicy::Dynamic {
                max_size: 8,
                deadline: Time::ZERO,
            },
            queue_capacity: 256,
            shed: ShedPolicy::DropNewest,
            rate_hz,
            requests,
            seed,
        }
    }
}

/// Per-network service quantities, evaluated once per simulation.
struct ServiceModel {
    reports: Vec<pixel_core::accelerator::NetworkReport>,
    static_power: pixel_units::Power,
}

impl ServiceModel {
    fn new(ctx: &EvalContext, workload: &Workload, accel: &AcceleratorConfig) -> Self {
        let reports = workload
            .networks()
            .iter()
            .map(|net| ctx.evaluate(accel, net))
            .collect();
        let static_power = accel.design.model().static_power(accel);
        Self {
            reports,
            static_power: static_power.laser_wall_plug + static_power.thermal_tuning,
        }
    }

    /// Service time and dynamic energy of a `batch`-sized dispatch of
    /// network `network`.
    fn batch(&self, network: usize, batch: usize) -> (Time, Energy) {
        let report = &self.reports[network];
        let latency = throughput::batch_latency(report, batch);
        #[allow(clippy::cast_precision_loss)]
        let energy = report.total_energy() * batch as f64;
        (latency, energy)
    }
}

/// The in-flight batch.
struct InFlight {
    completes_at: f64,
    batch: Vec<Request>,
}

/// Mutable simulation state shared by the event handlers.
struct SimState<'a> {
    clock: f64,
    queue: AdmissionQueue,
    server: Option<InFlight>,
    service: &'a ServiceModel,
    policy: BatchPolicy,
    latencies: LatencyHistogram,
    tenant_latencies: Vec<LatencyHistogram>,
    tenant_completed: Vec<u64>,
    completed: u64,
    shed: u64,
    dispatches: u64,
    batched_total: u64,
    busy_time: f64,
    dynamic_energy: Energy,
    last_completion: f64,
}

impl SimState<'_> {
    fn admit(&mut self, request: Request) {
        self.clock = self.clock.max(request.arrival);
        pixel_obs::add("serve/arrivals", 1);
        if self.queue.offer(request.arrival, request).is_some() {
            pixel_obs::add("serve/shed", 1);
            self.shed += 1;
        } else {
            pixel_obs::add("serve/admitted", 1);
        }
    }

    fn dispatch(&mut self) {
        let batch = self.queue.take_batch(self.clock, self.policy.max_batch());
        assert!(!batch.is_empty(), "dispatch on an empty queue");
        let (latency, energy) = self.service.batch(batch[0].network, batch.len());
        pixel_obs::add("serve/dispatches", 1);
        #[allow(clippy::cast_precision_loss)]
        pixel_obs::observe("serve/batch_size", batch.len() as f64);
        self.dispatches += 1;
        self.batched_total += batch.len() as u64;
        self.busy_time += latency.value();
        self.dynamic_energy += energy;
        self.server = Some(InFlight {
            completes_at: self.clock + latency.value(),
            batch,
        });
    }

    fn complete(&mut self) {
        // lint:allow(P002) complete() only runs with an in-flight batch; silent recovery would corrupt the clock
        let flight = self.server.take().expect("completion without a batch");
        self.clock = flight.completes_at;
        self.last_completion = flight.completes_at;
        for request in &flight.batch {
            let sojourn = flight.completes_at - request.arrival;
            // Integer nanoseconds: deterministic bucketing, ns resolution.
            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
            let ns = (sojourn * 1e9).round() as u64;
            self.latencies.record(ns);
            self.tenant_latencies[request.tenant].record(ns);
            self.tenant_completed[request.tenant] += 1;
            self.completed += 1;
            pixel_obs::add("serve/completions", 1);
        }
    }
}

fn percentiles(histogram: &LatencyHistogram) -> LatencyPercentiles {
    let at = |q: f64| {
        Time::from_nanos({
            #[allow(clippy::cast_precision_loss)]
            {
                histogram.percentile(q) as f64
            }
        })
    };
    LatencyPercentiles {
        p50: at(0.50),
        p95: at(0.95),
        p99: at(0.99),
        p999: at(0.999),
        max: Time::from_nanos({
            #[allow(clippy::cast_precision_loss)]
            {
                histogram.max() as f64
            }
        }),
    }
}

/// Runs one serving simulation to completion (all arrivals generated,
/// queue drained, last batch finished) and reports the measurements.
///
/// Deterministic: the report is a pure function of `(workload, the
/// context's overrides, config)` — bitwise identical across runs,
/// machines, and sweep worker counts.
///
/// # Panics
///
/// Panics if `config.requests` is zero.
#[must_use]
pub fn simulate(workload: &Workload, ctx: &EvalContext, config: &ServeConfig) -> ServeReport {
    let _span = pixel_obs::span("serve/sim");
    assert!(config.requests > 0, "need at least one request");
    let service = ServiceModel::new(ctx, workload, &config.accel);
    let mut source =
        RequestSource::new(workload, config.rate_hz, config.requests, config.seed).peekable();
    let tenants = workload.tenants().len();
    let mut state = SimState {
        clock: 0.0,
        queue: AdmissionQueue::new(config.queue_capacity, config.shed),
        server: None,
        service: &service,
        policy: config.policy,
        latencies: LatencyHistogram::default(),
        tenant_latencies: (0..tenants).map(|_| LatencyHistogram::default()).collect(),
        tenant_completed: vec![0; tenants],
        completed: 0,
        shed: 0,
        dispatches: 0,
        batched_total: 0,
        busy_time: 0.0,
        dynamic_energy: Energy::ZERO,
        last_completion: 0.0,
    };

    loop {
        if let Some(flight) = &state.server {
            // Busy: the next event is the completion or an earlier arrival.
            let completes_at = flight.completes_at;
            match source.peek() {
                Some(next) if next.arrival < completes_at => {
                    if let Some(request) = source.next() {
                        state.admit(request);
                    }
                }
                _ => state.complete(),
            }
            continue;
        }
        // Idle server: consult the batching policy.
        match state.policy.decide(&state.queue, state.clock) {
            Decision::Dispatch => state.dispatch(),
            Decision::HoldUntil(expiry) => match source.peek() {
                Some(next) if next.arrival < expiry => {
                    if let Some(request) = source.next() {
                        state.admit(request);
                    }
                }
                _ => {
                    // Deadline fires (or the stream ended): dispatch what
                    // is waiting.
                    state.clock = state.clock.max(expiry);
                    state.dispatch();
                }
            },
            Decision::Hold => match source.next() {
                Some(request) => state.admit(request),
                None if !state.queue.is_empty() => {
                    // Stream over: flush remaining (possibly partial)
                    // batches so every admitted request completes.
                    state.dispatch();
                }
                None => break,
            },
        }
    }

    let makespan = state.last_completion.max(state.clock);
    let arrivals = config.requests as u64;
    #[allow(clippy::cast_precision_loss)]
    let achieved_hz = if makespan > 0.0 {
        state.completed as f64 / makespan
    } else {
        0.0
    };
    #[allow(clippy::cast_precision_loss)]
    let mean_batch = if state.dispatches > 0 {
        state.batched_total as f64 / state.dispatches as f64
    } else {
        0.0
    };
    let static_energy = service.static_power * Time::new(makespan);
    let total_energy = state.dynamic_energy + static_energy;
    #[allow(clippy::cast_precision_loss)]
    let energy_per_inference = if state.completed > 0 {
        total_energy / state.completed as f64
    } else {
        Energy::ZERO
    };
    let tenant_stats = workload
        .tenants()
        .iter()
        .enumerate()
        .map(|(t, tenant)| TenantStats {
            name: tenant.name.clone(),
            completed: state.tenant_completed[t],
            p95: percentiles(&state.tenant_latencies[t]).p95,
        })
        .collect();
    pixel_obs::gauge("serve/utilization", state.busy_time / makespan.max(1e-30));
    ServeReport {
        config: config.accel,
        policy: config.policy.label(),
        offered_hz: config.rate_hz,
        achieved_hz,
        arrivals,
        completed: state.completed,
        dropped: state.shed,
        latency: percentiles(&state.latencies),
        mean_batch,
        mean_queue_depth: state.queue.mean_depth(makespan),
        max_queue_depth: state.queue.max_depth(),
        utilization: state.busy_time / makespan.max(1e-30),
        makespan: Time::new(makespan),
        total_energy,
        energy_per_inference,
        tenants: tenant_stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pixel_core::config::Design;

    fn base_config(rate: f64) -> ServeConfig {
        ServeConfig::new(AcceleratorConfig::new(Design::Oo, 4, 16), rate, 400, 2026)
    }

    #[test]
    fn conservation_all_arrivals_complete_or_drop() {
        let workload = Workload::paper_mix();
        let ctx = EvalContext::new();
        for rate in [0.5, 2.0, 1_000.0] {
            let report = simulate(&workload, &ctx, &base_config(rate));
            assert_eq!(
                report.completed + report.dropped,
                report.arrivals,
                "rate {rate}"
            );
            assert!(report.completed > 0, "rate {rate}");
        }
    }

    #[test]
    fn low_load_latency_is_single_batch_service() {
        let workload = Workload::paper_mix();
        let ctx = EvalContext::new();
        // One request every 50 s against a fabric that serves ~1.7/s:
        // no queueing, every batch is a singleton, so p50 equals a
        // single-network service time (between the fastest and slowest
        // network in the mix).
        let report = simulate(&workload, &ctx, &base_config(0.02));
        assert!((report.mean_batch - 1.0).abs() < 1e-9);
        let singles: Vec<f64> = workload
            .networks()
            .iter()
            .map(|net| {
                ctx.batch_service(&base_config(0.02).accel, net, 1)
                    .latency
                    .value()
            })
            .collect();
        let lo = singles.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = singles.iter().copied().fold(0.0f64, f64::max);
        let p50 = report.latency.p50.value();
        assert!(
            p50 >= lo * 0.99 && p50 <= hi * 1.01,
            "p50 {p50} outside [{lo}, {hi}]"
        );
        assert_eq!(report.dropped, 0);
    }

    #[test]
    fn overload_sheds_and_saturates() {
        let workload = Workload::paper_mix();
        let ctx = EvalContext::new();
        // The OO fabric serves ~1.7 inf/s under this mix: 0.8/s is a
        // comfortable load, 1000/s buries it.
        let light = simulate(&workload, &ctx, &base_config(0.8));
        let crushed = simulate(&workload, &ctx, &base_config(1_000.0));
        assert!(crushed.dropped > 0, "overload must shed");
        assert!(crushed.utilization > 0.99, "overloaded server never idles");
        assert!(crushed.achieved_hz < crushed.offered_hz * 0.5);
        assert!(crushed.latency.p99 >= light.latency.p99);
        assert!(crushed.mean_batch > light.mean_batch);
    }

    #[test]
    fn fixed_policy_flushes_partial_batches() {
        let workload = Workload::paper_mix();
        let ctx = EvalContext::new();
        let mut config = base_config(500.0);
        config.policy = BatchPolicy::Fixed { size: 8 };
        let report = simulate(&workload, &ctx, &config);
        assert_eq!(report.completed + report.dropped, report.arrivals);
        assert!(report.mean_batch > 1.0);
    }

    #[test]
    fn deadline_policy_bounds_head_waiting() {
        let workload = Workload::paper_mix();
        let ctx = EvalContext::new();
        let mut config = base_config(0.05);
        config.policy = BatchPolicy::Dynamic {
            max_size: 8,
            deadline: Time::from_millis(5.0),
        };
        let report = simulate(&workload, &ctx, &config);
        assert_eq!(report.completed, report.arrivals);
        // At one request every 20 s the fabric mostly idles; sojourn is
        // bounded by the deadline plus a few service times.
        let slowest = workload
            .networks()
            .iter()
            .map(|net| ctx.batch_service(&config.accel, net, 1).latency.value())
            .fold(0.0f64, f64::max);
        // Batches can hold several requests and one batch may wait behind
        // another; the bound is loose but real.
        assert!(
            report.latency.max.value() < 5e-3 + slowest * 20.0,
            "max {} vs bound {}",
            report.latency.max.value(),
            5e-3 + slowest * 20.0
        );
    }

    #[test]
    fn static_power_amortizes_worse_at_low_load() {
        let workload = Workload::paper_mix();
        let ctx = EvalContext::new();
        // Same request count at a lower rate stretches the makespan, so
        // the OO laser/heater wall-plug is amortized over fewer
        // inferences per second: energy/inference must rise.
        let slow = simulate(&workload, &ctx, &base_config(0.05));
        let fast = simulate(&workload, &ctx, &base_config(1.5));
        assert!(
            slow.energy_per_inference > fast.energy_per_inference,
            "slow {} vs fast {}",
            slow.energy_per_inference.as_millijoules(),
            fast.energy_per_inference.as_millijoules()
        );
    }

    #[test]
    fn simulation_is_deterministic() {
        let workload = Workload::paper_mix();
        let ctx = EvalContext::new();
        let a = simulate(&workload, &ctx, &base_config(3_000.0));
        let b = simulate(&workload, &ctx, &base_config(3_000.0));
        assert_eq!(a, b);
        let c = {
            let mut config = base_config(3_000.0);
            config.seed += 1;
            simulate(&workload, &ctx, &config)
        };
        assert_ne!(a.latency, c.latency, "different seed, different trace");
    }
}
