//! The discrete-event serving loop.
//!
//! A single PIXEL fabric serves one batch at a time. The simulation
//! advances event to event — the next arrival, the in-flight batch's
//! completion, or a batching-deadline expiry, whichever is earliest
//! (ties resolve completion-first, then deadline-before-arrival, making
//! the trajectory a pure function of the seed). Per-batch service time
//! and energy come from [`EvalContext`] through the pipeline-fill
//! batching model in `pixel_core::throughput` — the same `DesignModel`
//! backends behind every paper artifact, so EE/OE/OO serving curves are
//! comparable by construction.
//!
//! Since the policy/clock split, this module is a thin *driver*: all
//! admission, batching, shedding, and accounting state lives in the
//! pure [`ServeMachine`], which this loop
//! feeds with virtual instants (arrivals from the seeded source,
//! planned completions, deadline expiries). The `pixel-served` daemon
//! drives the identical machine with a monotonic clock.
//!
//! Instrumentation: the run executes under a `serve/sim` span and
//! counts `serve.arrivals`, `serve.admitted`, `serve.shed`,
//! `serve.dispatches` and `serve.completions`; dispatched batch sizes
//! feed the `serve.batch_size` histogram. Beyond the flat counters,
//! every request emits typed lifecycle events
//! ([`crate::flightrec::ServeEvent`]) into a bounded
//! [`FlightRecorder`](crate::flightrec::FlightRecorder) — and through
//! the `pixel-obs` trace sink when one is installed — while a
//! [`WindowSeries`](crate::window::WindowSeries) folds the run into
//! fixed-virtual-time-grid bins and a
//! [`LatencyBreakdown`](crate::flightrec::LatencyBreakdown) splits
//! every sojourn into queue wait and service time per tenant and per
//! network.

use crate::arrivals::{RequestSource, Workload};
use crate::batching::{BatchPolicy, Decision};
use crate::flightrec::FlightData;
use crate::machine::{FinishMeta, MachineConfig, ServeMachine};
use crate::queue::ShedPolicy;
use crate::report::ServeReport;
use crate::service::ServiceModel;
use pixel_core::config::AcceleratorConfig;
use pixel_core::model::EvalContext;
use pixel_units::Time;

/// Parameters of one serving simulation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServeConfig {
    /// The accelerator under load.
    pub accel: AcceleratorConfig,
    /// Batch-formation policy.
    pub policy: BatchPolicy,
    /// Admission-queue bound.
    pub queue_capacity: usize,
    /// What to shed when the queue is full.
    pub shed: ShedPolicy,
    /// Offered arrival rate \[requests/s\].
    pub rate_hz: f64,
    /// Arrivals to generate before draining.
    pub requests: usize,
    /// Seed of the arrival process.
    pub seed: u64,
    /// Nominal bin count of the windowed time-series grid (the grid
    /// coarsens beyond the expected makespan, never past `2×` this).
    pub window_bins: usize,
}

impl ServeConfig {
    /// A serving setup with the defaults the artifact sweep uses:
    /// dynamic batching up to 8, a 256-deep drop-newest queue, a
    /// 64-bin metrics grid.
    #[must_use]
    pub fn new(accel: AcceleratorConfig, rate_hz: f64, requests: usize, seed: u64) -> Self {
        Self {
            accel,
            policy: BatchPolicy::Dynamic {
                max_size: 8,
                deadline: Time::ZERO,
            },
            queue_capacity: 256,
            shed: ShedPolicy::DropNewest,
            rate_hz,
            requests,
            seed,
            window_bins: 64,
        }
    }

    /// The [`MachineConfig`] this simulation drives: the policy state
    /// machine's structural parameters, with the window grid sized to
    /// the expected makespan (`requests / rate`).
    #[must_use]
    pub fn machine_config(&self, workload: &Workload, event_capacity: usize) -> MachineConfig {
        let window_bins = self.window_bins.max(2);
        #[allow(clippy::cast_precision_loss)]
        let expected_makespan = self.requests as f64 / self.rate_hz;
        #[allow(clippy::cast_precision_loss)]
        let base_width = (expected_makespan / window_bins as f64).max(1e-9);
        MachineConfig {
            policy: self.policy,
            queue_capacity: self.queue_capacity,
            shed: self.shed,
            window_width: Time::new(base_width),
            window_max_bins: window_bins * 2,
            event_capacity,
            tenants: workload.tenants().len(),
            networks: workload.networks().len(),
        }
    }
}

/// Runs one serving simulation to completion (all arrivals generated,
/// queue drained, last batch finished) and reports the measurements.
///
/// Equivalent to [`simulate_with_flightrec`] with a zero-capacity event
/// ring (events are still counted and spilled to an installed trace
/// sink, never buffered).
///
/// Deterministic: the report is a pure function of `(workload, the
/// context's overrides, config)` — bitwise identical across runs,
/// machines, and sweep worker counts.
///
/// # Panics
///
/// Panics if `config.requests` is zero.
#[must_use]
pub fn simulate(workload: &Workload, ctx: &EvalContext, config: &ServeConfig) -> ServeReport {
    simulate_with_flightrec(workload, ctx, config, 0).0
}

/// Runs one serving simulation with a `event_capacity`-deep flight
/// recorder and returns the report together with the recorded
/// [`FlightData`] (event ring, per-kind counts, and the full
/// wait/service latency decomposition).
///
/// # Panics
///
/// Panics if `config.requests` is zero.
#[must_use]
pub fn simulate_with_flightrec(
    workload: &Workload,
    ctx: &EvalContext,
    config: &ServeConfig,
    event_capacity: usize,
) -> (ServeReport, FlightData) {
    let _span = pixel_obs::span("serve/sim");
    assert!(config.requests > 0, "need at least one request");
    let service = ServiceModel::new(ctx, workload, &config.accel);
    let mut source =
        RequestSource::new(workload, config.rate_hz, config.requests, config.seed).peekable();
    let mut machine = ServeMachine::new(&config.machine_config(workload, event_capacity));
    let cost = |network: usize, batch: usize| service.batch(network, batch);

    loop {
        if let Some(completes_at) = machine.planned_completion() {
            // Busy: the next event is the completion or an earlier arrival.
            match source.peek() {
                Some(next) if next.arrival < completes_at => {
                    if let Some(request) = source.next() {
                        let _ = machine.admit(request);
                    }
                }
                _ => machine.complete(),
            }
            continue;
        }
        // Idle server: consult the batching policy.
        match machine.decide() {
            Decision::Dispatch => machine.dispatch(cost),
            Decision::HoldUntil(expiry) => match source.peek() {
                Some(next) if next.arrival < expiry => {
                    if let Some(request) = source.next() {
                        let _ = machine.admit(request);
                    }
                }
                _ => {
                    // Deadline fires (or the stream ended): dispatch what
                    // is waiting.
                    machine.advance_to(expiry);
                    machine.dispatch(cost);
                }
            },
            Decision::Hold => match source.next() {
                Some(request) => {
                    let _ = machine.admit(request);
                }
                None if !machine.queue_is_empty() => {
                    // Stream over: flush remaining (possibly partial)
                    // batches so every admitted request completes.
                    machine.dispatch(cost);
                }
                None => break,
            },
        }
    }

    machine.finish(
        &FinishMeta {
            accel: config.accel,
            offered_hz: config.rate_hz,
            static_power: service.static_power(),
            arrivals: config.requests as u64,
        },
        workload,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flightrec::ServeEvent;
    use pixel_core::config::Design;

    fn base_config(rate: f64) -> ServeConfig {
        ServeConfig::new(AcceleratorConfig::new(Design::Oo, 4, 16), rate, 400, 2026)
    }

    #[test]
    fn conservation_all_arrivals_complete_or_drop() {
        let workload = Workload::paper_mix();
        let ctx = EvalContext::new();
        for rate in [0.5, 2.0, 1_000.0] {
            let report = simulate(&workload, &ctx, &base_config(rate));
            assert_eq!(
                report.completed + report.dropped,
                report.arrivals,
                "rate {rate}"
            );
            assert!(report.completed > 0, "rate {rate}");
        }
    }

    #[test]
    fn low_load_latency_is_single_batch_service() {
        let workload = Workload::paper_mix();
        let ctx = EvalContext::new();
        // One request every 50 s against a fabric that serves ~1.7/s:
        // no queueing, every batch is a singleton, so p50 equals a
        // single-network service time (between the fastest and slowest
        // network in the mix).
        let report = simulate(&workload, &ctx, &base_config(0.02));
        assert!((report.mean_batch - 1.0).abs() < 1e-9);
        let singles: Vec<f64> = workload
            .networks()
            .iter()
            .map(|net| {
                ctx.batch_service(&base_config(0.02).accel, net, 1)
                    .latency
                    .value()
            })
            .collect();
        let lo = singles.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = singles.iter().copied().fold(0.0f64, f64::max);
        let p50 = report.latency.p50.value();
        assert!(
            p50 >= lo * 0.99 && p50 <= hi * 1.01,
            "p50 {p50} outside [{lo}, {hi}]"
        );
        assert_eq!(report.dropped, 0);
        // Uncontended: queue wait is negligible next to service time.
        assert!(report.queue_wait.p50 <= report.service.p50);
    }

    #[test]
    fn overload_sheds_and_saturates() {
        let workload = Workload::paper_mix();
        let ctx = EvalContext::new();
        // The OO fabric serves ~1.7 inf/s under this mix: 0.8/s is a
        // comfortable load, 1000/s buries it.
        let light = simulate(&workload, &ctx, &base_config(0.8));
        let crushed = simulate(&workload, &ctx, &base_config(1_000.0));
        assert!(crushed.dropped > 0, "overload must shed");
        assert!(crushed.utilization > 0.99, "overloaded server never idles");
        assert!(crushed.achieved_hz < crushed.offered_hz * 0.5);
        assert!(crushed.latency.p99 >= light.latency.p99);
        assert!(crushed.mean_batch > light.mean_batch);
        // Under overload the sojourn is dominated by queueing, not
        // service: the decomposition must show it.
        assert!(crushed.queue_wait.p50 > crushed.service.p50);
    }

    #[test]
    fn fixed_policy_flushes_partial_batches() {
        let workload = Workload::paper_mix();
        let ctx = EvalContext::new();
        let mut config = base_config(500.0);
        config.policy = BatchPolicy::Fixed { size: 8 };
        let report = simulate(&workload, &ctx, &config);
        assert_eq!(report.completed + report.dropped, report.arrivals);
        assert!(report.mean_batch > 1.0);
    }

    #[test]
    fn deadline_policy_bounds_head_waiting() {
        let workload = Workload::paper_mix();
        let ctx = EvalContext::new();
        let mut config = base_config(0.05);
        config.policy = BatchPolicy::Dynamic {
            max_size: 8,
            deadline: Time::from_millis(5.0),
        };
        let report = simulate(&workload, &ctx, &config);
        assert_eq!(report.completed, report.arrivals);
        // At one request every 20 s the fabric mostly idles; sojourn is
        // bounded by the deadline plus a few service times.
        let slowest = workload
            .networks()
            .iter()
            .map(|net| ctx.batch_service(&config.accel, net, 1).latency.value())
            .fold(0.0f64, f64::max);
        // Batches can hold several requests and one batch may wait behind
        // another; the bound is loose but real.
        assert!(
            report.latency.max.value() < 5e-3 + slowest * 20.0,
            "max {} vs bound {}",
            report.latency.max.value(),
            5e-3 + slowest * 20.0
        );
    }

    #[test]
    fn static_power_amortizes_worse_at_low_load() {
        let workload = Workload::paper_mix();
        let ctx = EvalContext::new();
        // Same request count at a lower rate stretches the makespan, so
        // the OO laser/heater wall-plug is amortized over fewer
        // inferences per second: energy/inference must rise.
        let slow = simulate(&workload, &ctx, &base_config(0.05));
        let fast = simulate(&workload, &ctx, &base_config(1.5));
        assert!(
            slow.energy_per_inference > fast.energy_per_inference,
            "slow {} vs fast {}",
            slow.energy_per_inference.as_millijoules(),
            fast.energy_per_inference.as_millijoules()
        );
    }

    #[test]
    fn simulation_is_deterministic() {
        let workload = Workload::paper_mix();
        let ctx = EvalContext::new();
        let a = simulate(&workload, &ctx, &base_config(3_000.0));
        let b = simulate(&workload, &ctx, &base_config(3_000.0));
        assert_eq!(a, b);
        let c = {
            let mut config = base_config(3_000.0);
            config.seed += 1;
            simulate(&workload, &ctx, &config)
        };
        assert_ne!(a.latency, c.latency, "different seed, different trace");
    }

    #[test]
    fn flightrec_event_stream_is_conserved() {
        let workload = Workload::paper_mix();
        let ctx = EvalContext::new();
        let (report, data) = simulate_with_flightrec(&workload, &ctx, &base_config(1_000.0), 128);
        let [arrive, enqueue, shed, formed, started, ended] = *data.recorder.counts();
        assert_eq!(arrive, report.arrivals);
        assert_eq!(shed, report.dropped);
        assert_eq!(enqueue + shed, report.arrivals);
        assert_eq!(formed, started);
        assert_eq!(started, ended);
        // The ring keeps only the tail but the counts are lossless.
        assert_eq!(data.recorder.events().len(), 128);
        assert_eq!(data.recorder.total(), data.recorder.dropped() + 128);
        // Virtual timestamps never regress within the buffered tail.
        let events = data.recorder.events();
        for pair in events.iter().zip(events.iter().skip(1)) {
            assert!(pair.0.t_ns() <= pair.1.t_ns());
        }
        // Decomposition totals match the report.
        assert_eq!(data.overall.count(), report.completed);
        assert_eq!(
            data.overall.wait.sum() + data.overall.service.sum(),
            data.overall.sojourn.sum()
        );
    }

    #[test]
    fn drop_oldest_with_ring_eviction_conserves_event_counts() {
        // Drop-oldest shedding evicts *admitted* requests, so every
        // arrival both enqueues and later either sheds or completes —
        // and a tiny flight-recorder ring must lose events without
        // losing counts.
        let workload = Workload::paper_mix();
        let ctx = EvalContext::new();
        let mut config = base_config(1_000.0);
        config.queue_capacity = 16;
        config.shed = ShedPolicy::DropOldest;
        let (report, data) = simulate_with_flightrec(&workload, &ctx, &config, 32);
        assert!(report.dropped > 0, "overload must shed");

        // Request conservation: arrivals = sheds + services (the run
        // drains, so nothing is still queued at finish).
        assert_eq!(report.completed + report.dropped, report.arrivals);

        // Event-count conservation survives ring eviction: counts are
        // tallied before eviction, so arrive = shed + per-batch
        // completion totals even though the ring kept only 32 events.
        let [arrive, enqueue, shed, formed, started, ended] = *data.recorder.counts();
        assert_eq!(arrive, report.arrivals);
        // Under drop-oldest the arriving request is always admitted.
        assert_eq!(enqueue, report.arrivals);
        assert_eq!(shed, report.dropped);
        assert_eq!(formed, started);
        assert_eq!(started, ended);
        assert_eq!(data.recorder.events().len(), 32);
        assert_eq!(data.recorder.total(), data.recorder.dropped() + 32);
        assert_eq!(
            data.recorder.total(),
            arrive + enqueue + shed + formed + started + ended
        );

        // Drop-oldest sheds the queue head: every shed id must be
        // strictly older than the newest id admitted so far, and no id
        // is shed twice.
        let mut shed_ids = std::collections::BTreeSet::new();
        let mut newest_admitted = 0u64;
        for event in data.recorder.events() {
            match *event {
                ServeEvent::Enqueue { id, .. } => newest_admitted = newest_admitted.max(id),
                ServeEvent::Shed { id, .. } => {
                    assert!(id < newest_admitted, "shed {id} is not the oldest");
                    assert!(shed_ids.insert(id), "request {id} shed twice");
                }
                _ => {}
            }
        }
    }

    #[test]
    fn flightrec_does_not_perturb_the_report() {
        let workload = Workload::paper_mix();
        let ctx = EvalContext::new();
        let plain = simulate(&workload, &ctx, &base_config(800.0));
        let (recorded, _) = simulate_with_flightrec(&workload, &ctx, &base_config(800.0), 4096);
        assert_eq!(plain, recorded);
    }

    #[test]
    fn window_series_accounts_for_every_request() {
        let workload = Workload::paper_mix();
        let ctx = EvalContext::new();
        let report = simulate(&workload, &ctx, &base_config(2.0));
        let arrivals: u64 = report.windows.bins().iter().map(|b| b.arrivals).sum();
        let completions: u64 = report.windows.bins().iter().map(|b| b.completions).sum();
        let shed: u64 = report.windows.bins().iter().map(|b| b.shed).sum();
        assert_eq!(arrivals, report.arrivals);
        assert_eq!(completions, report.completed);
        assert_eq!(shed, report.dropped);
        let busy: f64 = report.windows.bins().iter().map(|b| b.busy).sum();
        assert!(
            (busy - report.utilization * report.makespan.value()).abs()
                < 1e-6 * report.makespan.value().max(1.0)
        );
    }
}
