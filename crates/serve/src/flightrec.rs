//! Request-lifecycle events, the bounded flight recorder, and the
//! per-tenant / per-network latency decomposition.
//!
//! Every request flowing through the serving simulator emits typed,
//! virtual-time-stamped [`ServeEvent`]s — arrive, enqueue, shed, batch
//! formed, service start, service end — attributed to its tenant,
//! network, and batch. A [`FlightRecorder`] keeps the last `capacity`
//! events in a ring (evicting the oldest, like an aircraft flight
//! recorder) while counting every event it ever saw, so post-mortems of
//! a saturated run see the final moments in full detail without the
//! simulator ever allocating proportionally to the request count. With
//! a JSONL trace sink installed the full stream can additionally be
//! spilled to disk through `pixel-obs`.
//!
//! [`LatencyBreakdown`] splits each request's sojourn into queue wait
//! and service time as integer-nanosecond HDR histograms. Because
//! histogram [`merge`](LatencyHistogram::merge) is exact, the per-tenant
//! (and per-network) sojourn histograms recombine bitwise into the
//! aggregate latency histogram — an invariant the test suite pins.

use crate::percentile::LatencyHistogram;
use pixel_units::VirtualNs;
use std::collections::VecDeque;

/// Number of distinct [`ServeEvent`] kinds.
pub const EVENT_KINDS: usize = 6;

/// One virtual-time-stamped request-lifecycle event.
///
/// All timestamps are typed integer-nanosecond [`VirtualNs`] stamps on
/// the serving clock (virtual in the simulator, monotonic-since-epoch
/// in the daemon), so event streams are bitwise reproducible.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServeEvent {
    /// A request arrived at the admission queue.
    Arrive {
        /// Virtual timestamp.
        t_ns: VirtualNs,
        /// Request id (arrival sequence number).
        id: u64,
        /// Tenant index.
        tenant: usize,
        /// Network index.
        network: usize,
    },
    /// The request was admitted; `depth` is the queue depth after.
    Enqueue {
        /// Virtual timestamp.
        t_ns: VirtualNs,
        /// Request id.
        id: u64,
        /// Queue depth after admission.
        depth: usize,
    },
    /// A request was shed by the admission policy (the arriving request
    /// under drop-newest, the evicted head under drop-oldest).
    Shed {
        /// Virtual timestamp.
        t_ns: VirtualNs,
        /// Id of the shed request.
        id: u64,
        /// Tenant index of the shed request.
        tenant: usize,
        /// Network index of the shed request.
        network: usize,
    },
    /// The batching policy formed a batch from the queue head.
    BatchFormed {
        /// Virtual timestamp.
        t_ns: VirtualNs,
        /// Batch sequence number.
        batch: u64,
        /// Network index the batch runs.
        network: usize,
        /// Requests in the batch.
        size: usize,
    },
    /// The fabric started serving a batch.
    ServiceStart {
        /// Virtual timestamp.
        t_ns: VirtualNs,
        /// Batch sequence number.
        batch: u64,
    },
    /// The fabric finished a batch; its requests completed.
    ServiceEnd {
        /// Virtual timestamp.
        t_ns: VirtualNs,
        /// Batch sequence number.
        batch: u64,
        /// Requests completed with the batch.
        size: usize,
    },
}

impl ServeEvent {
    /// The event's virtual timestamp.
    #[must_use]
    pub fn t_ns(&self) -> VirtualNs {
        match *self {
            Self::Arrive { t_ns, .. }
            | Self::Enqueue { t_ns, .. }
            | Self::Shed { t_ns, .. }
            | Self::BatchFormed { t_ns, .. }
            | Self::ServiceStart { t_ns, .. }
            | Self::ServiceEnd { t_ns, .. } => t_ns,
        }
    }

    /// Stable snake-case kind tag (also the JSONL `kind` field).
    #[must_use]
    pub fn kind(&self) -> &'static str {
        match self {
            Self::Arrive { .. } => "arrive",
            Self::Enqueue { .. } => "enqueue",
            Self::Shed { .. } => "shed",
            Self::BatchFormed { .. } => "batch_formed",
            Self::ServiceStart { .. } => "service_start",
            Self::ServiceEnd { .. } => "service_end",
        }
    }

    /// Index of this kind in [`FlightRecorder::counts`] order.
    #[must_use]
    pub fn kind_index(&self) -> usize {
        match self {
            Self::Arrive { .. } => 0,
            Self::Enqueue { .. } => 1,
            Self::Shed { .. } => 2,
            Self::BatchFormed { .. } => 3,
            Self::ServiceStart { .. } => 4,
            Self::ServiceEnd { .. } => 5,
        }
    }

    /// The event as one flat JSON object tagged
    /// `"schema":"pixel.serve.event"` (no trailing newline).
    #[must_use]
    pub fn to_json(&self) -> String {
        let head = format!(
            "{{\"schema\":\"pixel.serve.event\",\"kind\":\"{}\",\"t_ns\":{}",
            self.kind(),
            self.t_ns().as_nanos()
        );
        match *self {
            Self::Arrive {
                id,
                tenant,
                network,
                ..
            }
            | Self::Shed {
                id,
                tenant,
                network,
                ..
            } => {
                format!("{head},\"id\":{id},\"tenant\":{tenant},\"network\":{network}}}")
            }
            Self::Enqueue { id, depth, .. } => {
                format!("{head},\"id\":{id},\"depth\":{depth}}}")
            }
            Self::BatchFormed {
                batch,
                network,
                size,
                ..
            } => {
                format!("{head},\"batch\":{batch},\"network\":{network},\"size\":{size}}}")
            }
            Self::ServiceStart { batch, .. } => format!("{head},\"batch\":{batch}}}"),
            Self::ServiceEnd { batch, size, .. } => {
                format!("{head},\"batch\":{batch},\"size\":{size}}}")
            }
        }
    }

    /// A one-line human rendering used by the flightrec artifact.
    #[must_use]
    pub fn describe(&self) -> String {
        let t_ms = self.t_ns().as_millis_f64();
        let detail = match *self {
            Self::Arrive {
                id,
                tenant,
                network,
                ..
            } => format!("req {id} tenant {tenant} net {network}"),
            Self::Enqueue { id, depth, .. } => format!("req {id} depth {depth}"),
            Self::Shed {
                id,
                tenant,
                network,
                ..
            } => format!("req {id} tenant {tenant} net {network}"),
            Self::BatchFormed {
                batch,
                network,
                size,
                ..
            } => format!("batch {batch} net {network} size {size}"),
            Self::ServiceStart { batch, .. } => format!("batch {batch}"),
            Self::ServiceEnd { batch, size, .. } => format!("batch {batch} size {size}"),
        };
        format!("{t_ms:>12.3} ms  {:<13} {detail}", self.kind())
    }
}

/// A bounded ring of the most recent [`ServeEvent`]s plus lossless
/// per-kind counts.
///
/// Capacity 0 is the count-only mode the plain `simulate` entry point
/// uses: events are tallied (and spilled to a trace sink if one is
/// active) but never buffered.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlightRecorder {
    capacity: usize,
    ring: VecDeque<ServeEvent>,
    counts: [u64; EVENT_KINDS],
    dropped: u64,
}

impl FlightRecorder {
    /// A recorder keeping at most `capacity` events.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity,
            ring: VecDeque::with_capacity(capacity.min(4096)),
            counts: [0; EVENT_KINDS],
            dropped: 0,
        }
    }

    /// Records one event, evicting the oldest buffered event when full.
    pub fn record(&mut self, event: ServeEvent) {
        self.counts[event.kind_index()] += 1;
        if self.capacity == 0 {
            self.dropped += 1;
            return;
        }
        if self.ring.len() == self.capacity {
            self.ring.pop_front();
            self.dropped += 1;
        }
        self.ring.push_back(event);
    }

    /// The buffered (most recent) events, oldest first.
    #[must_use]
    pub fn events(&self) -> &VecDeque<ServeEvent> {
        &self.ring
    }

    /// Ring capacity this recorder was built with.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Lossless per-kind event totals, in [`ServeEvent::kind_index`]
    /// order (arrive, enqueue, shed, `batch_formed`, `service_start`,
    /// `service_end`).
    #[must_use]
    pub fn counts(&self) -> &[u64; EVENT_KINDS] {
        &self.counts
    }

    /// Total events ever recorded.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Events that fell out of (or never entered) the ring.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// The buffered events as JSONL (one `pixel.serve.event` object per
    /// line).
    #[must_use]
    pub fn to_jsonl(&self) -> String {
        let mut s = String::new();
        for event in &self.ring {
            s.push_str(&event.to_json());
            s.push('\n');
        }
        s
    }
}

/// Queue-wait / service-time / sojourn decomposition of a request
/// population, as exact-merge HDR histograms (integer nanoseconds).
///
/// For every request the three recorded values satisfy
/// `wait_ns + service_ns == sojourn_ns` exactly, so breakdowns for
/// disjoint populations (tenants, networks) merge back into the
/// aggregate bitwise.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LatencyBreakdown {
    /// Time from arrival to batch service start.
    pub wait: LatencyHistogram,
    /// Time from service start to completion.
    pub service: LatencyHistogram,
    /// End-to-end time from arrival to completion.
    pub sojourn: LatencyHistogram,
}

impl LatencyBreakdown {
    /// Records one request's decomposition; the sojourn is the exact
    /// integer sum of the parts.
    pub fn record(&mut self, wait_ns: u64, service_ns: u64) {
        self.wait.record(wait_ns);
        self.service.record(service_ns);
        self.sojourn.record(wait_ns + service_ns);
    }

    /// Folds `other` into `self` histogram-by-histogram.
    ///
    /// # Panics
    ///
    /// Panics if the histograms' `sub_bits` differ.
    pub fn merge(&mut self, other: &Self) {
        self.wait.merge(&other.wait);
        self.service.merge(&other.service);
        self.sojourn.merge(&other.sojourn);
    }

    /// Requests recorded.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.sojourn.count()
    }
}

/// Everything the instrumented simulation gathered beyond the report:
/// the event ring and the full latency decomposition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlightData {
    /// Bounded event ring plus lossless per-kind counts.
    pub recorder: FlightRecorder,
    /// Aggregate wait/service/sojourn decomposition.
    pub overall: LatencyBreakdown,
    /// Per-tenant decompositions, indexed like `Workload::tenants`.
    pub tenants: Vec<LatencyBreakdown>,
    /// Per-network decompositions, indexed like `Workload::networks`.
    pub networks: Vec<LatencyBreakdown>,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_events() -> Vec<ServeEvent> {
        vec![
            ServeEvent::Arrive {
                t_ns: VirtualNs::from_nanos(10),
                id: 0,
                tenant: 1,
                network: 4,
            },
            ServeEvent::Enqueue {
                t_ns: VirtualNs::from_nanos(10),
                id: 0,
                depth: 1,
            },
            ServeEvent::BatchFormed {
                t_ns: VirtualNs::from_nanos(20),
                batch: 0,
                network: 4,
                size: 1,
            },
            ServeEvent::ServiceStart {
                t_ns: VirtualNs::from_nanos(20),
                batch: 0,
            },
            ServeEvent::Shed {
                t_ns: VirtualNs::from_nanos(25),
                id: 1,
                tenant: 0,
                network: 2,
            },
            ServeEvent::ServiceEnd {
                t_ns: VirtualNs::from_nanos(90),
                batch: 0,
                size: 1,
            },
        ]
    }

    #[test]
    fn ring_evicts_oldest_but_counts_everything() {
        let mut rec = FlightRecorder::new(3);
        for event in sample_events() {
            rec.record(event);
        }
        assert_eq!(rec.total(), 6);
        assert_eq!(rec.events().len(), 3);
        assert_eq!(rec.dropped(), 3);
        assert_eq!(rec.events()[0].kind(), "service_start");
        assert_eq!(rec.events()[2].kind(), "service_end");
        assert_eq!(rec.counts(), &[1, 1, 1, 1, 1, 1]);
    }

    #[test]
    fn capacity_zero_counts_only() {
        let mut rec = FlightRecorder::new(0);
        for event in sample_events() {
            rec.record(event);
        }
        assert_eq!(rec.total(), 6);
        assert!(rec.events().is_empty());
        assert_eq!(rec.dropped(), 6);
    }

    #[test]
    fn events_serialize_as_tagged_flat_json() {
        for event in sample_events() {
            let json = event.to_json();
            let fields = pixel_obs::parse_flat_object(&json).expect("flat JSON");
            let get = |k: &str| {
                fields
                    .iter()
                    .find(|(key, _)| key == k)
                    .map(|(_, v)| v.clone())
            };
            assert_eq!(get("schema").as_deref(), Some("pixel.serve.event"));
            assert_eq!(get("kind").as_deref(), Some(event.kind()));
            assert_eq!(
                get("t_ns").as_deref(),
                Some(event.t_ns().as_nanos().to_string().as_str())
            );
        }
    }

    #[test]
    fn breakdown_parts_sum_to_sojourn() {
        let mut b = LatencyBreakdown::default();
        b.record(100, 900);
        b.record(0, 450);
        b.record(7, 13);
        assert_eq!(b.count(), 3);
        assert_eq!(b.wait.sum() + b.service.sum(), b.sojourn.sum());
        assert_eq!(b.sojourn.max(), 1000);
    }

    #[test]
    fn breakdown_merge_is_exact() {
        let mut a = LatencyBreakdown::default();
        let mut b = LatencyBreakdown::default();
        let mut whole = LatencyBreakdown::default();
        for (i, (w, s)) in [(5u64, 10u64), (100, 3), (42, 42), (0, 1)]
            .iter()
            .enumerate()
        {
            if i % 2 == 0 {
                a.record(*w, *s);
            } else {
                b.record(*w, *s);
            }
            whole.record(*w, *s);
        }
        a.merge(&b);
        assert_eq!(a, whole);
    }
}
