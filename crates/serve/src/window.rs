//! Windowed time-series metrics on a fixed virtual-time grid.
//!
//! The serving simulator folds its event stream into a [`WindowSeries`]:
//! per-bin arrival/completion/shed counts, dispatch and batch-size
//! accounting, prorated busy time and dynamic energy, and a
//! time-weighted queue-depth integral. Saturation then reads as a
//! *trajectory* — queues filling, shed rate ramping, power climbing off
//! the laser/heater static floor — instead of a single end-of-run knee
//! number.
//!
//! The grid lives entirely on the simulation's virtual clock and the
//! series is built by one thread in event order, so it is bitwise
//! deterministic across runs and `--jobs` levels like every other serve
//! artifact. When a run outlives its expected makespan (overload), the
//! grid coarsens by merging adjacent bin pairs (doubling the width), so
//! memory stays bounded no matter how long the drain takes.

use pixel_units::{Time, VirtInstant};

/// One fixed-width virtual-time bin of a [`WindowSeries`].
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct WindowBin {
    /// Requests that arrived in this bin.
    pub arrivals: u64,
    /// Requests whose inference completed in this bin.
    pub completions: u64,
    /// Requests shed at admission in this bin.
    pub shed: u64,
    /// Batches dispatched in this bin.
    pub dispatches: u64,
    /// Requests inside those dispatched batches.
    pub batched: u64,
    /// Seconds of this bin the accelerator spent busy.
    pub busy: f64,
    /// Dynamic inference energy \[J\] prorated into this bin.
    pub dynamic_joules: f64,
    /// Queue-depth integral over this bin \[request·s\].
    pub depth_integral: f64,
}

impl WindowBin {
    /// Folds `other` into `self` (used by grid coarsening).
    fn absorb(&mut self, other: &Self) {
        self.arrivals += other.arrivals;
        self.completions += other.completions;
        self.shed += other.shed;
        self.dispatches += other.dispatches;
        self.batched += other.batched;
        self.busy += other.busy;
        self.dynamic_joules += other.dynamic_joules;
        self.depth_integral += other.depth_integral;
    }
}

/// A bounded, self-coarsening time series over the virtual clock.
#[derive(Debug, Clone, PartialEq)]
pub struct WindowSeries {
    width: f64,
    max_bins: usize,
    bins: Vec<WindowBin>,
    coarsenings: u32,
    depth_t: f64,
    depth: usize,
}

impl WindowSeries {
    /// A series with bins of `base_width`, coarsening (pairwise bin
    /// merges, width doubling) whenever it would exceed `max_bins`.
    ///
    /// # Panics
    ///
    /// Panics if `base_width` is not finite and positive, or `max_bins`
    /// is less than 2.
    #[must_use]
    pub fn new(base_width: Time, max_bins: usize) -> Self {
        let base_width = base_width.value();
        assert!(
            base_width.is_finite() && base_width > 0.0,
            "window width must be positive, got {base_width}"
        );
        assert!(max_bins >= 2, "need at least two window bins");
        Self {
            width: base_width,
            max_bins,
            bins: Vec::new(),
            coarsenings: 0,
            depth_t: 0.0,
            depth: 0,
        }
    }

    /// Current bin width (base width × 2^coarsenings).
    #[must_use]
    pub fn width(&self) -> Time {
        Time::new(self.width)
    }

    /// How many times the grid coarsened to stay under its bin bound.
    #[must_use]
    pub fn coarsenings(&self) -> u32 {
        self.coarsenings
    }

    /// The bins, in virtual-time order (bin `i` covers
    /// `[i·width, (i+1)·width)`).
    #[must_use]
    pub fn bins(&self) -> &[WindowBin] {
        &self.bins
    }

    /// Bin index of time `t` at the *current* width (no allocation).
    fn raw_index(&self, t: f64) -> usize {
        #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
        {
            (t.max(0.0) / self.width).floor() as usize
        }
    }

    /// Merges adjacent bin pairs and doubles the width.
    fn coarsen(&mut self) {
        let mut merged = Vec::with_capacity(self.bins.len().div_ceil(2));
        for pair in self.bins.chunks(2) {
            let mut bin = pair[0];
            if let Some(second) = pair.get(1) {
                bin.absorb(second);
            }
            merged.push(bin);
        }
        self.bins = merged;
        self.width *= 2.0;
        self.coarsenings += 1;
    }

    /// Index of the bin containing `t`, coarsening and allocating as
    /// needed so the index is always in range.
    fn index(&mut self, t: f64) -> usize {
        let mut idx = self.raw_index(t);
        while idx >= self.max_bins {
            self.coarsen();
            idx = self.raw_index(t);
        }
        if idx >= self.bins.len() {
            self.bins.resize(idx + 1, WindowBin::default());
        }
        idx
    }

    /// Counts one arrival at instant `t`.
    pub fn count_arrival(&mut self, t: VirtInstant) {
        let idx = self.index(t.as_secs());
        self.bins[idx].arrivals += 1;
    }

    /// Counts one shed request at instant `t`.
    pub fn count_shed(&mut self, t: VirtInstant) {
        let idx = self.index(t.as_secs());
        self.bins[idx].shed += 1;
    }

    /// Counts `n` completions at instant `t`.
    pub fn count_completions(&mut self, t: VirtInstant, n: u64) {
        let idx = self.index(t.as_secs());
        self.bins[idx].completions += n;
    }

    /// Counts one `size`-request batch dispatch at instant `t`.
    pub fn count_dispatch(&mut self, t: VirtInstant, size: u64) {
        let idx = self.index(t.as_secs());
        self.bins[idx].dispatches += 1;
        self.bins[idx].batched += size;
    }

    /// Spreads a quantity over `[start, end)`: `f(bin, overlap)` is
    /// called with each bin's overlap \[s\] with the interval.
    fn prorate(&mut self, start: f64, end: f64, f: impl Fn(&mut WindowBin, f64)) {
        if end <= start {
            return;
        }
        // Force coarsening/allocation up front so the width is stable
        // across the loop below.
        let last = self.index(end);
        let first = self.index(start);
        for idx in first..=last {
            #[allow(clippy::cast_precision_loss)]
            let lo = idx as f64 * self.width;
            let hi = lo + self.width;
            let overlap = (end.min(hi) - start.max(lo)).max(0.0);
            f(&mut self.bins[idx], overlap);
        }
    }

    /// Marks the accelerator busy over `[start, end)`.
    pub fn add_busy(&mut self, start: VirtInstant, end: VirtInstant) {
        self.prorate(start.as_secs(), end.as_secs(), |bin, dt| bin.busy += dt);
    }

    /// Spreads `joules` of dynamic energy uniformly over `[start, end)`.
    pub fn add_energy(&mut self, start: VirtInstant, end: VirtInstant, joules: f64) {
        let (start, end) = (start.as_secs(), end.as_secs());
        let span = end - start;
        if span > 0.0 {
            self.prorate(start, end, |bin, dt| {
                bin.dynamic_joules += joules * dt / span;
            });
        }
    }

    /// Records a queue-depth transition: the previous depth is
    /// integrated up to `t`, then the depth becomes `depth`.
    pub fn set_depth(&mut self, t: VirtInstant, depth: usize) {
        self.integrate_depth(t.as_secs());
        self.depth = depth;
    }

    fn integrate_depth(&mut self, t: f64) {
        if t > self.depth_t && self.depth > 0 {
            #[allow(clippy::cast_precision_loss)]
            let d = self.depth as f64;
            let from = self.depth_t;
            self.prorate(from, t, |bin, dt| bin.depth_integral += d * dt);
        }
        self.depth_t = self.depth_t.max(t);
    }

    /// Closes the series at `makespan`: integrates the final queue
    /// depth and allocates (empty) bins through the end of the run.
    pub fn finish(&mut self, makespan: VirtInstant) {
        let makespan = makespan.as_secs();
        self.integrate_depth(makespan);
        if makespan > 0.0 {
            // Cover the full run even if the tail produced no events.
            let _ = self.index(makespan * (1.0 - 1e-12));
        }
    }

    /// Folds `other` into `self` bin-by-bin on a common grid.
    ///
    /// The two series must share a base grid: widths may differ only by
    /// the power-of-two factor coarsening introduces, and the finer
    /// series is coarsened until the widths agree. Bins are then
    /// absorbed index-wise, *keeping the longer horizon* — when the
    /// series cover different virtual-time spans (fleet shards drain at
    /// different instants), the tail bins of the longer series survive,
    /// including its final partial bin. The result re-coarsens if the
    /// union would exceed this series' bin bound.
    ///
    /// # Panics
    ///
    /// Panics if the widths are incommensurate (not related by a power
    /// of two), which means the series were built on different base
    /// grids.
    pub fn merge(&mut self, other: &Self) {
        let mut other = other.clone();
        while self.width < other.width && !approx_eq(self.width, other.width) {
            self.coarsen();
        }
        while other.width < self.width && !approx_eq(self.width, other.width) {
            other.coarsen();
        }
        assert!(
            approx_eq(self.width, other.width),
            "incommensurate window grids: {} vs {}",
            self.width,
            other.width
        );
        // Keep the longer horizon: a plain zip would silently drop the
        // longer series' tail (and with it the final partial bin).
        if other.bins.len() > self.bins.len() {
            self.bins.resize(other.bins.len(), WindowBin::default());
        }
        for (bin, o) in self.bins.iter_mut().zip(other.bins.iter()) {
            bin.absorb(o);
        }
        while self.bins.len() > self.max_bins {
            self.coarsen();
        }
        self.depth_t = self.depth_t.max(other.depth_t);
        self.depth += other.depth;
    }

    /// Renders the series as a fixed-width trajectory table.
    /// `static_power_w` is the always-on (laser + heater) floor added to
    /// each bin's dynamic power.
    #[must_use]
    pub fn render(&self, static_power_w: f64) -> String {
        let mut s =
            String::from("bin |    t[s] |   arr  done  shed | qdepth busy%  batch | power[W]\n");
        for (idx, bin) in self.bins.iter().enumerate() {
            #[allow(clippy::cast_precision_loss)]
            let t = idx as f64 * self.width;
            #[allow(clippy::cast_precision_loss)]
            let batch = if bin.dispatches > 0 {
                bin.batched as f64 / bin.dispatches as f64
            } else {
                0.0
            };
            s.push_str(&format!(
                "{idx:>3} | {t:>7.2} | {:>5} {:>5} {:>5} | {:>6.1} {:>5.1} {:>6.2} | {:>8.3}\n",
                bin.arrivals,
                bin.completions,
                bin.shed,
                bin.depth_integral / self.width,
                bin.busy / self.width * 100.0,
                batch,
                static_power_w + bin.dynamic_joules / self.width,
            ));
        }
        s
    }

    /// Renders the series as JSONL, one `pixel.serve.window` object per
    /// bin. `tags` is spliced verbatim after the schema field (pass
    /// `""`, or e.g. `"design":"OO","load":0.85,` — trailing comma
    /// included).
    #[must_use]
    pub fn to_jsonl(&self, tags: &str) -> String {
        let mut s = String::new();
        for (idx, bin) in self.bins.iter().enumerate() {
            #[allow(clippy::cast_precision_loss)]
            let t = idx as f64 * self.width;
            s.push_str(&format!(
                "{{\"schema\":\"pixel.serve.window\",{tags}\"bin\":{idx},\"t_s\":{t},\"width_s\":{},\"arrivals\":{},\"completions\":{},\"shed\":{},\"dispatches\":{},\"batched\":{},\"busy_s\":{},\"dynamic_j\":{},\"depth_integral\":{}}}\n",
                self.width,
                bin.arrivals,
                bin.completions,
                bin.shed,
                bin.dispatches,
                bin.batched,
                bin.busy,
                bin.dynamic_joules,
                bin.depth_integral,
            ));
        }
        s
    }
}

/// Width comparison tolerant of the float noise a long chain of `×2.0`
/// doublings cannot introduce but a differently-ordered base-width
/// computation could.
fn approx_eq(a: f64, b: f64) -> bool {
    (a - b).abs() <= 1e-9 * a.max(b)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn at(t: f64) -> VirtInstant {
        VirtInstant::from_secs(t)
    }

    fn series(width: f64, max_bins: usize) -> WindowSeries {
        WindowSeries::new(Time::new(width), max_bins)
    }

    #[test]
    fn events_land_in_their_bins() {
        let mut w = series(1.0, 16);
        w.count_arrival(at(0.5));
        w.count_arrival(at(1.5));
        w.count_shed(at(1.5));
        w.count_completions(at(2.5), 3);
        w.count_dispatch(at(0.1), 4);
        assert_eq!(w.bins()[0].arrivals, 1);
        assert_eq!(w.bins()[1].arrivals, 1);
        assert_eq!(w.bins()[1].shed, 1);
        assert_eq!(w.bins()[2].completions, 3);
        assert_eq!(w.bins()[0].dispatches, 1);
        assert_eq!(w.bins()[0].batched, 4);
    }

    #[test]
    fn proration_conserves_totals() {
        let mut w = series(1.0, 64);
        w.add_busy(at(0.25), at(3.75));
        w.add_energy(at(0.25), at(3.75), 7.0);
        let busy: f64 = w.bins().iter().map(|b| b.busy).sum();
        let joules: f64 = w.bins().iter().map(|b| b.dynamic_joules).sum();
        assert!((busy - 3.5).abs() < 1e-12, "busy {busy}");
        assert!((joules - 7.0).abs() < 1e-12, "joules {joules}");
        // The interior bins are fully covered.
        assert!((w.bins()[1].busy - 1.0).abs() < 1e-12);
        assert!((w.bins()[0].busy - 0.75).abs() < 1e-12);
        assert!((w.bins()[3].busy - 0.75).abs() < 1e-12);
    }

    #[test]
    fn depth_integration_matches_hand_computation() {
        let mut w = series(1.0, 16);
        w.set_depth(at(0.0), 1); // depth 1 over [0, 1)
        w.set_depth(at(1.0), 2); // depth 2 over [1, 2)
        w.set_depth(at(2.0), 0); // empty afterwards
        w.finish(at(4.0));
        let integral: f64 = w.bins().iter().map(|b| b.depth_integral).sum();
        assert!((integral - 3.0).abs() < 1e-12, "integral {integral}");
        assert!((w.bins()[0].depth_integral - 1.0).abs() < 1e-12);
        assert!((w.bins()[1].depth_integral - 2.0).abs() < 1e-12);
        assert_eq!(w.bins().len(), 4);
    }

    #[test]
    fn coarsening_bounds_bins_and_conserves_counts() {
        let mut w = series(1.0, 8);
        for i in 0..100 {
            w.count_arrival(at(f64::from(i) + 0.5));
        }
        assert!(w.bins().len() <= 8, "{} bins", w.bins().len());
        assert!(w.coarsenings() >= 4);
        let total: u64 = w.bins().iter().map(|b| b.arrivals).sum();
        assert_eq!(total, 100);
        // Width doubled per coarsening.
        assert!((w.width().value() - f64::from(1u32 << w.coarsenings())).abs() < 1e-9);
    }

    #[test]
    fn render_and_jsonl_cover_every_bin() {
        let mut w = series(0.5, 8);
        w.count_arrival(at(0.1));
        w.count_completions(at(1.4), 1);
        w.finish(at(1.5));
        let table = w.render(2.0);
        assert_eq!(table.lines().count(), 1 + w.bins().len());
        let jsonl = w.to_jsonl("\"design\":\"OO\",");
        assert_eq!(jsonl.lines().count(), w.bins().len());
        for line in jsonl.lines() {
            assert!(line.contains("\"schema\":\"pixel.serve.window\""));
            assert!(line.contains("\"design\":\"OO\""));
        }
    }

    #[test]
    #[should_panic(expected = "window width")]
    fn rejects_nonpositive_width() {
        let _ = series(0.0, 8);
    }

    /// The regression the fleet aggregation depends on: merging
    /// per-shard series is bitwise identical to folding every event
    /// into one series — including the *final partial bin* of the
    /// shard with the longer virtual-time horizon, which a naive
    /// zip-and-drop merge would lose.
    #[test]
    fn merge_equals_concatenated_event_stream() {
        // Quantities are power-of-two fractions so float sums are
        // order-independent-exact and bitwise comparison is fair.
        let events: &[(f64, u64)] = &[(0.25, 1), (1.5, 2), (2.75, 1), (5.25, 3), (9.75, 2)];
        let split = 2; // first two events belong to "shard A"
        let mut all = series(1.0, 32);
        let mut a = series(1.0, 32);
        let mut b = series(1.0, 32);
        for (i, &(t, n)) in events.iter().enumerate() {
            let shard = if i < split { &mut a } else { &mut b };
            for target in [&mut all, shard] {
                target.count_arrival(at(t));
                target.count_completions(at(t), n);
                target.add_busy(at(t), at(t + 0.5));
                target.add_energy(at(t), at(t + 0.5), 0.25);
            }
        }
        // Different horizons: shard A drains early, shard B runs to a
        // *partial* final bin at 10.4 s.
        a.finish(at(2.9));
        b.finish(at(10.4));
        all.finish(at(10.4));
        let mut merged = a.clone();
        merged.merge(&b);
        assert_eq!(merged.width(), all.width());
        assert_eq!(merged.bins(), all.bins());
        // The final partial bin survived the merge.
        assert_eq!(merged.bins().len(), b.bins().len());
        assert_eq!(merged.bins().len(), 11);
        assert_eq!(merged.bins()[9].arrivals, 1);
    }

    #[test]
    fn merge_reconciles_coarsening_mismatch_and_conserves_totals() {
        // Shard A coarsened (width 2), shard B did not (width 1): the
        // merge must land both on the common coarser grid.
        let mut a = series(1.0, 4);
        for i in 0..8 {
            a.count_arrival(at(f64::from(i) + 0.5));
        }
        assert!(a.coarsenings() >= 1);
        let mut b = series(1.0, 4);
        b.count_arrival(at(0.5));
        b.count_completions(at(1.5), 4);
        let width_a = a.width();
        let mut merged = a.clone();
        merged.merge(&b);
        assert_eq!(merged.width(), width_a);
        let arrivals: u64 = merged.bins().iter().map(|bin| bin.arrivals).sum();
        let completions: u64 = merged.bins().iter().map(|bin| bin.completions).sum();
        assert_eq!(arrivals, 9);
        assert_eq!(completions, 4);
        // Merging in the other order lands on the same grid and totals.
        let mut swapped = b;
        swapped.merge(&a);
        assert_eq!(swapped.width(), merged.width());
        assert_eq!(swapped.bins(), merged.bins());
    }

    #[test]
    fn merge_respects_the_bin_bound() {
        let mut a = series(1.0, 4);
        a.count_arrival(at(0.5));
        let mut b = series(1.0, 4);
        b.count_arrival(at(30.5)); // far horizon: union would need 31 bins
        a.merge(&b);
        assert!(a.bins().len() <= 4, "{} bins", a.bins().len());
        let arrivals: u64 = a.bins().iter().map(|bin| bin.arrivals).sum();
        assert_eq!(arrivals, 2);
    }

    #[test]
    #[should_panic(expected = "incommensurate")]
    fn merge_rejects_incommensurate_grids() {
        let mut a = series(1.0, 8);
        let b = series(0.3, 8);
        a.merge(&b);
    }
}
