//! Serving metrics: what one simulation run reports.

use crate::window::WindowSeries;
use pixel_core::config::AcceleratorConfig;
use pixel_units::{Energy, Time};

/// Latency percentiles of completed requests.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencyPercentiles {
    /// Median sojourn time.
    pub p50: Time,
    /// 95th percentile.
    pub p95: Time,
    /// 99th percentile.
    pub p99: Time,
    /// 99.9th percentile.
    pub p999: Time,
    /// Worst completed request.
    pub max: Time,
}

/// Per-tenant completion accounting and latency decomposition.
#[derive(Debug, Clone, PartialEq)]
pub struct TenantStats {
    /// Tenant name.
    pub name: String,
    /// Requests from this tenant that completed.
    pub completed: u64,
    /// 95th-percentile sojourn time of this tenant's requests.
    pub p95: Time,
    /// Queue-wait percentiles (arrival → batch service start).
    pub wait: LatencyPercentiles,
    /// Service-time percentiles (service start → completion).
    pub service: LatencyPercentiles,
}

/// Per-network completion accounting and latency decomposition.
#[derive(Debug, Clone, PartialEq)]
pub struct NetworkStats {
    /// Network name.
    pub name: String,
    /// Completed requests that ran this network.
    pub completed: u64,
    /// Queue-wait percentiles (arrival → batch service start).
    pub wait: LatencyPercentiles,
    /// Service-time percentiles (service start → completion).
    pub service: LatencyPercentiles,
}

/// Everything one serving simulation measures.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeReport {
    /// The accelerator configuration that served the run.
    pub config: AcceleratorConfig,
    /// Batching policy label.
    pub policy: String,
    /// Offered (generated) arrival rate \[requests/s\].
    pub offered_hz: f64,
    /// Achieved completion rate \[inferences/s\] over the makespan.
    pub achieved_hz: f64,
    /// Requests generated.
    pub arrivals: u64,
    /// Requests that completed inference.
    pub completed: u64,
    /// Requests shed at admission (rejected or evicted).
    pub dropped: u64,
    /// Sojourn-time percentiles of completed requests.
    pub latency: LatencyPercentiles,
    /// Queue-wait percentiles: time from arrival to batch service
    /// start. Per-request, wait + service equals the sojourn exactly.
    pub queue_wait: LatencyPercentiles,
    /// Service-time percentiles: time from batch service start to
    /// completion.
    pub service: LatencyPercentiles,
    /// Mean dispatched batch size.
    pub mean_batch: f64,
    /// Time-weighted mean queue depth.
    pub mean_queue_depth: f64,
    /// Deepest the queue got.
    pub max_queue_depth: usize,
    /// Fraction of the makespan the accelerator was busy.
    pub utilization: f64,
    /// Wall-clock of the whole run (first arrival to last completion).
    pub makespan: Time,
    /// Total energy charged: dynamic inference energy plus static
    /// (laser + thermal tuning) power integrated over the makespan.
    pub total_energy: Energy,
    /// Total energy divided by completed inferences.
    pub energy_per_inference: Energy,
    /// Per-tenant completions, in workload tenant order.
    pub tenants: Vec<TenantStats>,
    /// Per-network completions, in workload network order.
    pub networks: Vec<NetworkStats>,
    /// Windowed time-series metrics on the virtual-time grid.
    pub windows: WindowSeries,
}

impl ServeReport {
    /// Fraction of arrivals shed.
    #[must_use]
    pub fn drop_rate(&self) -> f64 {
        if self.arrivals == 0 {
            return 0.0;
        }
        #[allow(clippy::cast_precision_loss)]
        {
            self.dropped as f64 / self.arrivals as f64
        }
    }

    /// Goodput ratio: achieved throughput over offered load.
    #[must_use]
    pub fn goodput_ratio(&self) -> f64 {
        if self.offered_hz > 0.0 {
            self.achieved_hz / self.offered_hz
        } else {
            0.0
        }
    }
}
