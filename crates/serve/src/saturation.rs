//! Load sweeps: locating each design's saturation knee.
//!
//! For every design the sweep computes a *reference capacity* — the
//! steady-state inference rate the pipeline-fill batching model allows
//! given how long same-network runs the arrival mix naturally produces
//! (see [`reference_capacity`]).
//! Offered load is then swept as a fraction of that capacity, so EE, OE
//! and OO are each probed around their own knee with the same relative
//! grid, and the same seeded arrival sequence (common random numbers)
//! couples every point.
//!
//! Simulation points run through [`pixel_core::sweep::SweepEngine`]:
//! each point is an independent deterministic simulation, results come
//! back in input order, and the shared [`EvalContext`] memoizes the
//! per-design derivations — so the rendered sweep is bitwise identical
//! at any worker count.

use crate::arrivals::Workload;
use crate::batching::BatchPolicy;
use crate::queue::ShedPolicy;
use crate::report::ServeReport;
use crate::sim::{simulate, ServeConfig};
use pixel_core::config::{AcceleratorConfig, Design};
use pixel_core::model::EvalContext;
use pixel_core::sweep::SweepEngine;
use pixel_units::Time;

/// Parameters of a saturation sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepSpec {
    /// Lanes per OMAC.
    pub lanes: usize,
    /// Bits per lane.
    pub bits_per_lane: u32,
    /// Offered loads, as fractions of each design's reference capacity.
    pub loads: Vec<f64>,
    /// Batch-formation policy.
    pub policy: BatchPolicy,
    /// Admission-queue bound.
    pub queue_capacity: usize,
    /// Shedding policy.
    pub shed: ShedPolicy,
    /// Arrivals per simulation point.
    pub requests: usize,
    /// Seed of the arrival process (shared by every point).
    pub seed: u64,
}

impl SweepSpec {
    /// The artifact grid: the paper's headline 4-lane/16-bit fabrics,
    /// greedy dynamic batching up to 8, loads from 30 % to 120 % of
    /// capacity.
    #[must_use]
    pub fn artifact(seed: u64) -> Self {
        Self {
            lanes: 4,
            bits_per_lane: 16,
            loads: vec![0.30, 0.50, 0.70, 0.85, 0.95, 1.05, 1.20],
            policy: BatchPolicy::Dynamic {
                max_size: 8,
                deadline: Time::ZERO,
            },
            queue_capacity: 256,
            shed: ShedPolicy::DropNewest,
            requests: 3000,
            seed,
        }
    }
}

/// One point of a design's load curve.
#[derive(Debug, Clone, PartialEq)]
pub struct CurvePoint {
    /// Offered load as a fraction of the design's reference capacity.
    pub load: f64,
    /// The simulation's measurements.
    pub report: ServeReport,
}

/// A design's full load curve.
#[derive(Debug, Clone, PartialEq)]
pub struct DesignCurve {
    /// The design.
    pub design: Design,
    /// Reference capacity \[inferences/s\].
    pub capacity_hz: f64,
    /// One point per swept load, in grid order.
    pub points: Vec<CurvePoint>,
    /// First swept load where the design saturates (sheds arrivals or
    /// falls below 97 % goodput); `None` if the grid never saturates it.
    pub knee: Option<f64>,
}

/// Steady-state capacity bound of a design under a workload with
/// head-of-line same-network batching.
///
/// Dispatches only merge the queue's head-of-line run of same-network
/// requests, and in an i.i.d. request mix a run of network *i* (share
/// `p_i`) is geometric with mean `1/(1 - p_i)`. A batch pays the
/// pipeline-fill latency once plus the bottleneck-stage time per extra
/// request ([`pixel_core::throughput::batch_latency`]), and a run of
/// length `L` splits into `ceil(L / B)` fills under a max batch of `B`
/// — in expectation `(1 - p_i) / (1 - p_i^B)` fills per request. The
/// expected busy time per request is therefore
///
/// ```text
/// Σ_i p_i · [ (1 - p_i)/(1 - p_i^B) · (total_i - bneck_i) + bneck_i ]
/// ```
///
/// and the capacity is its reciprocal. `B = 1` degenerates to the
/// unbatched rate `1 / E[total]`; `B → ∞` approaches the natural-run
/// limit `Σ p_i [(1 - p_i)(total_i - bneck_i) + bneck_i]`.
#[must_use]
pub fn reference_capacity(
    ctx: &EvalContext,
    workload: &Workload,
    accel: &AcceleratorConfig,
    max_batch: usize,
) -> f64 {
    assert!(max_batch > 0, "max batch must be positive");
    let fractions = workload.network_fractions();
    let busy_per_request: f64 = workload
        .networks()
        .iter()
        .zip(&fractions)
        .map(|(net, &p)| {
            let report = ctx.evaluate(accel, net);
            let total = report.total_latency().value();
            let bottleneck = report
                .layers
                .iter()
                .map(|l| l.latency.value())
                .fold(0.0f64, f64::max);
            #[allow(clippy::cast_possible_truncation)]
            let fills_per_request = (1.0 - p) / (1.0 - p.powi(max_batch as i32));
            p * (fills_per_request * (total - bottleneck) + bottleneck)
        })
        .sum();
    1.0 / busy_per_request
}

/// Whether a measured point counts as saturated: it sheds load, or
/// completes less than 97 % of what was offered. The same criterion
/// classifies simulated sweep points and the live daemon's measured
/// points (the oracle's knee-agreement check relies on that).
#[must_use]
pub fn saturated(report: &ServeReport) -> bool {
    report.drop_rate() > 0.001 || report.goodput_ratio() < 0.97
}

/// Sweeps offered load × design through the engine and assembles one
/// curve per design.
#[must_use]
pub fn saturation_sweep(
    engine: &SweepEngine,
    workload: &Workload,
    spec: &SweepSpec,
) -> Vec<DesignCurve> {
    let _span = pixel_obs::span("serve/sweep");
    let configs: Vec<(Design, f64, f64)> = Design::ALL
        .iter()
        .flat_map(|&design| {
            let accel = AcceleratorConfig::new(design, spec.lanes, spec.bits_per_lane);
            let capacity =
                reference_capacity(engine.ctx(), workload, &accel, spec.policy.max_batch());
            spec.loads
                .iter()
                .map(move |&load| (design, capacity, load))
                .collect::<Vec<_>>()
        })
        .collect();
    let reports = engine.map(&configs, |ctx, &(design, capacity, load)| {
        let config = ServeConfig {
            accel: AcceleratorConfig::new(design, spec.lanes, spec.bits_per_lane),
            policy: spec.policy,
            queue_capacity: spec.queue_capacity,
            shed: spec.shed,
            rate_hz: capacity * load,
            requests: spec.requests,
            seed: spec.seed,
            window_bins: 64,
        };
        simulate(workload, ctx, &config)
    });

    let per_design = spec.loads.len();
    Design::ALL
        .iter()
        .enumerate()
        .map(|(d, &design)| {
            let block = &reports[d * per_design..(d + 1) * per_design];
            let capacity = configs[d * per_design].1;
            let points: Vec<CurvePoint> = spec
                .loads
                .iter()
                .zip(block)
                .map(|(&load, report)| CurvePoint {
                    load,
                    report: report.clone(),
                })
                .collect();
            let knee = points.iter().find(|p| saturated(&p.report)).map(|p| p.load);
            DesignCurve {
                design,
                capacity_hz: capacity,
                points,
                knee,
            }
        })
        .collect()
}

/// Renders the sweep as the `reproduce serve` artifact table.
#[must_use]
pub fn render_curves(workload: &Workload, spec: &SweepSpec, curves: &[DesignCurve]) -> String {
    let mut s = String::new();
    s.push_str("tenants: ");
    for (t, tenant) in workload.tenants().iter().enumerate() {
        if t > 0 {
            s.push_str(", ");
        }
        s.push_str(&tenant.name);
    }
    s.push('\n');
    s.push_str(&format!(
        "policy {} | queue {} ({}) | {} requests/point | seed {}\n",
        spec.policy.label(),
        spec.queue_capacity,
        spec.shed.label(),
        spec.requests,
        spec.seed,
    ));
    for curve in curves {
        s.push_str(&format!(
            "\n-- {} ({} lanes, {} bits/lane) — reference capacity {:.1} inf/s --\n",
            curve.design, spec.lanes, spec.bits_per_lane, curve.capacity_hz,
        ));
        s.push_str(
            "load | offered[/s] achieved[/s] |  p50[ms]  p95[ms]  p99[ms] p999[ms] | batch qmean  drop% util% | E/inf[mJ]\n",
        );
        for point in &curve.points {
            let r = &point.report;
            s.push_str(&format!(
                "{:>4.2} | {:>11.1} {:>12.1} | {:>8.3} {:>8.3} {:>8.3} {:>8.3} | {:>5.2} {:>5.1} {:>6.2} {:>5.1} | {:>9.3}\n",
                point.load,
                r.offered_hz,
                r.achieved_hz,
                r.latency.p50.as_millis(),
                r.latency.p95.as_millis(),
                r.latency.p99.as_millis(),
                r.latency.p999.as_millis(),
                r.mean_batch,
                r.mean_queue_depth,
                r.drop_rate() * 100.0,
                r.utilization * 100.0,
                r.energy_per_inference.as_millijoules(),
            ));
        }
        match curve.knee {
            Some(load) => s.push_str(&format!(
                "saturation knee: offered ≈ {load:.2}×capacity ({:.1} inf/s)\n",
                curve.capacity_hz * load
            )),
            None => s.push_str("saturation knee: beyond the swept grid\n"),
        }
    }
    s
}

/// Renders the sweep as machine-readable JSONL: one `pixel.serve.meta`
/// header, one `pixel.serve.point` object per measured point, and that
/// point's windowed time series as `pixel.serve.window` lines tagged
/// with the design and load. Every value lives on the virtual clock, so
/// the stream is bitwise identical across runs and `--jobs` levels.
#[must_use]
pub fn metrics_jsonl(workload: &Workload, spec: &SweepSpec, curves: &[DesignCurve]) -> String {
    let mut s = format!(
        "{{\"schema\":\"pixel.serve.meta\",\"policy\":\"{}\",\"queue\":{},\"shed\":\"{}\",\"requests\":{},\"seed\":{},\"tenants\":{},\"networks\":{}}}\n",
        spec.policy.label(),
        spec.queue_capacity,
        spec.shed.label(),
        spec.requests,
        spec.seed,
        workload.tenants().len(),
        workload.networks().len(),
    );
    for curve in curves {
        for point in &curve.points {
            let r = &point.report;
            s.push_str(&format!(
                "{{\"schema\":\"pixel.serve.point\",\"design\":\"{}\",\"load\":{},\"offered_hz\":{},\"achieved_hz\":{},\"completed\":{},\"dropped\":{},\"p50_ms\":{},\"p95_ms\":{},\"p99_ms\":{},\"wait_p99_ms\":{},\"service_p99_ms\":{},\"mean_batch\":{},\"utilization\":{},\"energy_per_inf_mj\":{}}}\n",
                curve.design,
                point.load,
                r.offered_hz,
                r.achieved_hz,
                r.completed,
                r.dropped,
                r.latency.p50.as_millis(),
                r.latency.p95.as_millis(),
                r.latency.p99.as_millis(),
                r.queue_wait.p99.as_millis(),
                r.service.p99.as_millis(),
                r.mean_batch,
                r.utilization,
                r.energy_per_inference.as_millijoules(),
            ));
            let tags = format!("\"design\":\"{}\",\"load\":{},", curve.design, point.load);
            s.push_str(&r.windows.to_jsonl(&tags));
        }
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_spec() -> SweepSpec {
        let mut spec = SweepSpec::artifact(2026);
        spec.loads = vec![0.4, 0.8, 1.1];
        spec.requests = 600;
        spec
    }

    #[test]
    fn capacities_follow_design_latency_at_high_precision() {
        let workload = Workload::paper_mix();
        let ctx = EvalContext::new();
        let capacity =
            |design| reference_capacity(&ctx, &workload, &AcceleratorConfig::new(design, 4, 16), 8);
        for design in Design::ALL {
            assert!(
                capacity(design).is_finite() && capacity(design) > 0.0,
                "{design}"
            );
        }
        // At 16 bits/lane the electrical baseline clocks shorter firing
        // rounds than the optical fabrics, whose round time grows with
        // per-lane precision; among the optical pair, the all-optical
        // OMAC+OAC design outpaces the hybrid OE.
        assert!(capacity(Design::Ee) > capacity(Design::Oo));
        assert!(capacity(Design::Oo) > capacity(Design::Oe));
    }

    #[test]
    fn batching_widens_reference_capacity() {
        let workload = Workload::paper_mix();
        let ctx = EvalContext::new();
        let accel = AcceleratorConfig::new(Design::Oo, 4, 16);
        let unbatched = reference_capacity(&ctx, &workload, &accel, 1);
        let batched = reference_capacity(&ctx, &workload, &accel, 8);
        assert!(batched > unbatched);
        // The gain is bounded by the natural same-network run length of
        // the mix, which is short for a six-network blend.
        assert!(batched < unbatched * 2.0);
    }

    #[test]
    fn sweep_produces_one_curve_per_design_with_knee_near_capacity() {
        let workload = Workload::paper_mix();
        let engine = SweepEngine::new(2);
        let curves = saturation_sweep(&engine, &workload, &small_spec());
        assert_eq!(curves.len(), 3);
        for curve in &curves {
            assert_eq!(curve.points.len(), 3);
            // Under-capacity points keep up; the 1.1×capacity point is
            // past the knee.
            let first = &curve.points[0].report;
            assert!(first.goodput_ratio() > 0.97, "{}", curve.design);
            let knee = curve.knee.expect("grid crosses saturation");
            assert!(knee > 0.4, "{}: knee {knee}", curve.design);
        }
    }

    #[test]
    fn latency_percentiles_are_monotone_in_load() {
        let workload = Workload::paper_mix();
        let engine = SweepEngine::new(1);
        let curves = saturation_sweep(&engine, &workload, &small_spec());
        for curve in &curves {
            for pair in curve.points.windows(2) {
                let (a, b) = (&pair[0].report.latency, &pair[1].report.latency);
                assert!(a.p50 <= b.p50, "{} p50", curve.design);
                assert!(a.p95 <= b.p95, "{} p95", curve.design);
                assert!(a.p99 <= b.p99, "{} p99", curve.design);
            }
        }
    }

    #[test]
    fn metrics_jsonl_is_schema_tagged_flat_json() {
        let workload = Workload::paper_mix();
        let engine = SweepEngine::new(2);
        let spec = small_spec();
        let curves = saturation_sweep(&engine, &workload, &spec);
        let jsonl = metrics_jsonl(&workload, &spec, &curves);
        // Meta line + one point line per measurement + window lines.
        assert!(jsonl.lines().count() > 3 * spec.loads.len());
        for line in jsonl.lines() {
            let fields = pixel_obs::parse_flat_object(line).expect("flat JSON");
            assert!(
                fields
                    .iter()
                    .any(|(k, v)| k == "schema" && v.starts_with("pixel.serve.")),
                "untagged line: {line}"
            );
        }
    }

    #[test]
    fn render_includes_every_design_and_knee_line() {
        let workload = Workload::paper_mix();
        let engine = SweepEngine::new(2);
        let spec = small_spec();
        let curves = saturation_sweep(&engine, &workload, &spec);
        let text = render_curves(&workload, &spec, &curves);
        for label in ["EE", "OE", "OO", "saturation knee", "vision-api"] {
            assert!(text.contains(label), "missing {label}:\n{text}");
        }
    }
}
