//! Fixed-memory latency percentiles: an HDR-style log-linear histogram.
//!
//! Tail-latency reporting cannot afford to keep every sample at serving
//! scale, so the simulator records latencies (integer nanoseconds) into
//! logarithmic buckets with `2^sub_bits` linear sub-buckets per octave.
//! That bounds the relative quantization error of any reported
//! percentile by `2^-sub_bits` (0.78 % at the default 7 sub-bucket
//! bits) while using a few kilobytes regardless of sample count. All
//! bucket math is integer (shifts and leading-zero counts), so recorded
//! histograms — and therefore every percentile the serving artifact
//! prints — are bitwise reproducible across platforms and worker
//! counts.
//!
//! [`exact_percentile`] is the sorted-reference implementation (same
//! nearest-rank convention); the property tests pin the estimator
//! against it.

/// Default linear resolution: 7 bits → ≤ 0.78 % relative error.
pub const DEFAULT_SUB_BITS: u32 = 7;

/// Log-linear histogram over `u64` values (nanoseconds, by convention).
///
/// Equality is structural (same `sub_bits`, same bucket counts, same
/// min/max/sum), which makes "merge of parts == histogram of the whole"
/// a directly testable invariant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LatencyHistogram {
    sub_bits: u32,
    counts: Vec<u64>,
    total: u64,
    min: u64,
    max: u64,
    sum: u128,
}

/// Bucket index of `value`: unit buckets below `2^sub_bits`, then
/// `2^sub_bits` linear sub-buckets per power of two.
fn index_of(value: u64, sub_bits: u32) -> usize {
    let m = 1u64 << sub_bits;
    if value < m {
        #[allow(clippy::cast_possible_truncation)]
        {
            value as usize
        }
    } else {
        let msb = 63 - value.leading_zeros();
        let shift = msb - sub_bits;
        #[allow(clippy::cast_possible_truncation)]
        {
            (u64::from(shift) * m + (value >> shift)) as usize
        }
    }
}

/// Lowest value mapping to bucket `index`.
fn lower_bound(index: usize, sub_bits: u32) -> u64 {
    let m = 1usize << sub_bits;
    if index < 2 * m {
        index as u64
    } else {
        let shift = (index - m) / m;
        ((index - shift * m) as u64) << shift
    }
}

/// Width of bucket `index` (1 below two octaves, doubling per octave).
fn bucket_width(index: usize, sub_bits: u32) -> u64 {
    let m = 1usize << sub_bits;
    if index < 2 * m {
        1
    } else {
        1u64 << ((index - m) / m)
    }
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new(DEFAULT_SUB_BITS)
    }
}

impl LatencyHistogram {
    /// A histogram with `2^sub_bits` sub-buckets per octave.
    ///
    /// # Panics
    ///
    /// Panics if `sub_bits` is outside `1..=16`.
    #[must_use]
    pub fn new(sub_bits: u32) -> Self {
        assert!((1..=16).contains(&sub_bits), "sub_bits must be 1..=16");
        Self {
            sub_bits,
            counts: Vec::new(),
            total: 0,
            min: u64::MAX,
            max: 0,
            sum: 0,
        }
    }

    /// Records one value.
    pub fn record(&mut self, value: u64) {
        let index = index_of(value, self.sub_bits);
        if index >= self.counts.len() {
            self.counts.resize(index + 1, 0);
        }
        self.counts[index] += 1;
        self.total += 1;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
        self.sum += u128::from(value);
    }

    /// Folds `other` into `self`, bucket by bucket. The result is
    /// bitwise identical to a histogram that recorded both value
    /// sequences directly (the property tests pin merge-of-two against
    /// histogram-of-concatenation for count, sum, and every rank query),
    /// which is what lets per-tenant latency decompositions reconstruct
    /// the aggregate histogram exactly.
    ///
    /// # Panics
    ///
    /// Panics if the two histograms use different `sub_bits` (their
    /// buckets would not line up).
    pub fn merge(&mut self, other: &Self) {
        assert_eq!(
            self.sub_bits, other.sub_bits,
            "cannot merge histograms with different sub_bits"
        );
        if other.total == 0 {
            return;
        }
        if other.counts.len() > self.counts.len() {
            self.counts.resize(other.counts.len(), 0);
        }
        for (dst, &src) in self.counts.iter_mut().zip(&other.counts) {
            *dst += src;
        }
        self.total += other.total;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        self.sum += other.sum;
    }

    /// The linear resolution this histogram was built with.
    #[must_use]
    pub fn sub_bits(&self) -> u32 {
        self.sub_bits
    }

    /// Number of recorded values.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Exact sum of all recorded values.
    #[must_use]
    pub fn sum(&self) -> u128 {
        self.sum
    }

    /// Smallest recorded value (0 when empty).
    #[must_use]
    pub fn min(&self) -> u64 {
        if self.total == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded value.
    #[must_use]
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean of the recorded values (exact, from the running sum).
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        #[allow(clippy::cast_precision_loss)]
        {
            self.sum as f64 / self.total as f64
        }
    }

    /// Value at quantile `q` in `[0, 1]` by the nearest-rank rule,
    /// reported as the midpoint of the containing bucket (clamped to the
    /// recorded min/max so degenerate distributions answer exactly).
    ///
    /// Returns 0 on an empty histogram.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    #[must_use]
    pub fn percentile(&self, q: f64) -> u64 {
        assert!((0.0..=1.0).contains(&q), "quantile {q} outside [0, 1]");
        if self.total == 0 {
            return 0;
        }
        #[allow(clippy::cast_precision_loss)]
        let target = (q * self.total as f64).ceil();
        #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
        let rank = (target as u64).max(1);
        let mut seen = 0u64;
        for (index, &count) in self.counts.iter().enumerate() {
            seen += count;
            if seen >= rank {
                let lower = lower_bound(index, self.sub_bits);
                let mid = lower + (bucket_width(index, self.sub_bits) - 1) / 2;
                return mid.clamp(self.min, self.max);
            }
        }
        self.max
    }
}

/// Sorted-reference percentile (nearest-rank) for validation: `values`
/// must be sorted ascending.
///
/// # Panics
///
/// Panics if `values` is empty or `q` is outside `[0, 1]`.
#[must_use]
pub fn exact_percentile(values: &[u64], q: f64) -> u64 {
    assert!(!values.is_empty(), "need at least one value");
    assert!((0.0..=1.0).contains(&q), "quantile {q} outside [0, 1]");
    #[allow(clippy::cast_precision_loss)]
    let target = (q * values.len() as f64).ceil();
    #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
    let rank = (target as usize).max(1);
    values[rank - 1]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_round_trip_brackets_every_value() {
        for sub_bits in [1u32, 4, 7] {
            for value in (0u64..2000).chain([1 << 20, u64::MAX / 2, u64::MAX]) {
                let index = index_of(value, sub_bits);
                let lower = lower_bound(index, sub_bits);
                let width = bucket_width(index, sub_bits);
                assert!(
                    lower <= value && value - lower < width,
                    "v={value} sub={sub_bits}: [{lower}, +{width})"
                );
            }
        }
    }

    #[test]
    fn bucket_indices_are_monotone() {
        let mut last = 0;
        for value in 0u64..100_000 {
            let index = index_of(value, 7);
            assert!(index >= last, "index regressed at {value}");
            last = index;
        }
    }

    #[test]
    fn small_values_are_exact() {
        let mut h = LatencyHistogram::new(7);
        for v in [3u64, 9, 9, 100, 127] {
            h.record(v);
        }
        assert_eq!(h.percentile(0.0), 3);
        assert_eq!(h.percentile(0.5), 9);
        assert_eq!(h.percentile(1.0), 127);
        assert_eq!(h.count(), 5);
        assert_eq!(h.min(), 3);
        assert_eq!(h.max(), 127);
    }

    #[test]
    fn empty_histogram_answers_zero() {
        let h = LatencyHistogram::default();
        assert_eq!(h.percentile(0.99), 0);
        assert_eq!(h.count(), 0);
        assert_eq!(h.min(), 0);
        assert!((h.mean() - 0.0).abs() < f64::EPSILON);
    }

    #[test]
    fn exact_percentile_nearest_rank() {
        let values = [10u64, 20, 30, 40];
        assert_eq!(exact_percentile(&values, 0.0), 10);
        assert_eq!(exact_percentile(&values, 0.25), 10);
        assert_eq!(exact_percentile(&values, 0.26), 20);
        assert_eq!(exact_percentile(&values, 0.5), 20);
        assert_eq!(exact_percentile(&values, 0.99), 40);
        assert_eq!(exact_percentile(&values, 1.0), 40);
    }

    #[test]
    #[should_panic(expected = "quantile")]
    fn rejects_out_of_range_quantile() {
        let _ = LatencyHistogram::default().percentile(1.5);
    }
}
