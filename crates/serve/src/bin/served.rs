//! `pixel-served` — the live serving daemon, its load generator, and
//! the simulator-oracle check, in one binary.
//!
//! ```text
//! pixel-served serve  [--port P] [--rate R] [--requests N] [--seed S]
//!                     [--scale X] [--mode analytic|functional]
//!                     [--metrics FILE]
//! pixel-served load   --port P [--rate R] [--requests N] [--seed S]
//!                     [--connections C]
//! pixel-served oracle [--quick] [--seed S]
//! ```
//!
//! `serve` binds `127.0.0.1:P` (0 picks a free port), prints
//! `pixel-served listening on 127.0.0.1:PORT` (the line `ci.sh`
//! scrapes), runs the daemon until a client drains it, prints a
//! summary, and optionally writes the live `pixel.serve.*` JSONL to
//! `--metrics`. `load` replays the seeded Poisson sequence against a
//! running daemon and reports client-side outcomes. `oracle` runs the
//! full simulator-vs-daemon check and exits non-zero on tolerance
//! failure.

use pixel_core::config::{AcceleratorConfig, Design};
use pixel_core::model::EvalContext;
use pixel_serve::daemon::{self, DaemonConfig, ServiceMode};
use pixel_serve::loadgen::{self, LoadgenConfig};
use pixel_serve::sim::ServeConfig;
use pixel_serve::Workload;
use std::io::Write as _;
use std::net::TcpListener;
use std::process::ExitCode;

/// Parsed common flags.
struct Flags {
    port: u16,
    rate_hz: f64,
    requests: usize,
    seed: u64,
    scale: f64,
    mode: ServiceMode,
    metrics: Option<String>,
    quick: bool,
    connections: usize,
}

fn parse_flags(args: &[String]) -> Result<Flags, String> {
    let mut flags = Flags {
        port: 0,
        rate_hz: 40.0,
        requests: 200,
        seed: 2026,
        scale: 0.01,
        mode: ServiceMode::Analytic,
        metrics: None,
        quick: false,
        connections: 1,
    };
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        let mut value = |name: &str| {
            iter.next()
                .cloned()
                .ok_or_else(|| format!("{name} needs a value"))
        };
        match arg.as_str() {
            "--port" => {
                flags.port = value("--port")?
                    .parse()
                    .map_err(|e| format!("--port: {e}"))?;
            }
            "--rate" => {
                flags.rate_hz = value("--rate")?
                    .parse()
                    .map_err(|e| format!("--rate: {e}"))?;
            }
            "--requests" => {
                flags.requests = value("--requests")?
                    .parse()
                    .map_err(|e| format!("--requests: {e}"))?;
            }
            "--seed" => {
                flags.seed = value("--seed")?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?;
            }
            "--scale" => {
                flags.scale = value("--scale")?
                    .parse()
                    .map_err(|e| format!("--scale: {e}"))?;
            }
            "--mode" => {
                flags.mode = match value("--mode")?.as_str() {
                    "analytic" => ServiceMode::Analytic,
                    "functional" => ServiceMode::Functional,
                    other => return Err(format!("--mode: unknown mode {other:?}")),
                };
            }
            "--connections" => {
                flags.connections = value("--connections")?
                    .parse()
                    .map_err(|e| format!("--connections: {e}"))?;
            }
            "--metrics" => flags.metrics = Some(value("--metrics")?),
            "--quick" => flags.quick = true,
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    Ok(flags)
}

fn cmd_serve(flags: &Flags) -> Result<(), String> {
    let workload = Workload::paper_mix();
    let ctx = EvalContext::new();
    let serve = ServeConfig::new(
        AcceleratorConfig::new(Design::Oo, 4, 16),
        flags.rate_hz,
        flags.requests,
        flags.seed,
    );
    let config = DaemonConfig {
        serve,
        time_scale: flags.scale,
        mode: flags.mode,
        event_capacity: 1024,
    };
    let listener =
        TcpListener::bind(("127.0.0.1", flags.port)).map_err(|e| format!("bind: {e}"))?;
    let port = listener
        .local_addr()
        .map_err(|e| format!("local_addr: {e}"))?
        .port();
    println!("pixel-served listening on 127.0.0.1:{port}");
    std::io::stdout()
        .flush()
        .map_err(|e| format!("flush: {e}"))?;
    let (report, _data) =
        daemon::run(listener, &workload, &ctx, &config).map_err(|e| format!("daemon: {e}"))?;
    println!(
        "pixel-served drained: arrivals {} completed {} dropped {} makespan {:.3} s utilization {:.3}",
        report.arrivals,
        report.completed,
        report.dropped,
        report.makespan.value(),
        report.utilization
    );
    if let Some(path) = &flags.metrics {
        std::fs::write(path, daemon::live_metrics_jsonl(&report))
            .map_err(|e| format!("write {path}: {e}"))?;
        println!("pixel-served metrics written to {path}");
    }
    Ok(())
}

fn cmd_load(flags: &Flags) -> Result<(), String> {
    if flags.port == 0 {
        return Err("load needs --port of a running daemon".to_owned());
    }
    let workload = Workload::paper_mix();
    let addr = std::net::SocketAddr::from(([127, 0, 0, 1], flags.port));
    let report = loadgen::run(
        addr,
        &workload,
        &LoadgenConfig {
            rate_hz: flags.rate_hz,
            requests: flags.requests,
            seed: flags.seed,
            connections: flags.connections,
        },
    )
    .map_err(|e| format!("loadgen: {e}"))?;
    println!(
        "loadgen: sent {} served {} shed {} over {} connection(s)",
        report.sent,
        report.served,
        report.shed,
        flags.connections.max(1)
    );
    if report.breakdown.count() > 0 {
        println!(
            "loadgen: wait p50 {} ns, service p50 {} ns",
            report.breakdown.wait.percentile(0.50),
            report.breakdown.service.percentile(0.50)
        );
    }
    match &report.stats {
        Some(stats) => println!("loadgen: daemon stats {stats}"),
        None => return Err("daemon closed without a stats frame".to_owned()),
    }
    if report.served + report.shed != report.sent {
        return Err(format!(
            "closed-loop accounting broken: {} + {} != {}",
            report.served, report.shed, report.sent
        ));
    }
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((command, rest)) = args.split_first() else {
        eprintln!("usage: pixel-served <serve|load|oracle> [flags]");
        return ExitCode::from(2);
    };
    if command == "oracle" {
        return ExitCode::from(pixel_serve::oracle::run_cli(rest));
    }
    let flags = match parse_flags(rest) {
        Ok(flags) => flags,
        Err(e) => {
            eprintln!("pixel-served: {e}");
            return ExitCode::from(2);
        }
    };
    let result = match command.as_str() {
        "serve" => cmd_serve(&flags),
        "load" => cmd_load(&flags),
        other => Err(format!("unknown command {other:?}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("pixel-served: {e}");
            ExitCode::FAILURE
        }
    }
}
