//! Deterministic closed-loop load generator for `pixel-served`.
//!
//! The generator replays the *same* seeded Poisson request sequence the
//! simulator consumes ([`RequestSource`]: the tenant/network draws are
//! rate-independent, so one seed couples a simulated run and a live run
//! as common random numbers) — paced against a [`MonotonicClock`]: each
//! request is sent when the live clock reaches its scheduled arrival
//! instant. A reader thread tracks every response, folding the
//! daemon-reported wait/service nanoseconds into a
//! [`LatencyBreakdown`]; after the last request the generator sends
//! `drain` and waits for the daemon's `pixel.serve.stats` frame, making
//! the run fully closed-loop: when [`run`] returns, every request has
//! been accounted served or shed.

use crate::arrivals::{RequestSource, Workload};
use crate::clock::{Clock, MonotonicClock};
use crate::flightrec::LatencyBreakdown;
use crate::wire::{self, WireRequest};
use std::net::{SocketAddr, TcpStream};

/// Parameters of one load-generation run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LoadgenConfig {
    /// Offered arrival rate \[requests/s\] on the live clock.
    pub rate_hz: f64,
    /// Requests to send.
    pub requests: usize,
    /// Seed of the arrival process (shared with the simulator for
    /// common-random-number comparisons).
    pub seed: u64,
}

/// What one load-generation run measured, from the client's side of
/// the socket.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LoadReport {
    /// Requests sent.
    pub sent: u64,
    /// Requests the daemon answered `served`.
    pub served: u64,
    /// Requests the daemon answered `shed`.
    pub shed: u64,
    /// Daemon-reported wait/service decomposition of the served
    /// requests.
    pub breakdown: LatencyBreakdown,
    /// The raw `pixel.serve.stats` frame body, when the daemon sent
    /// one.
    pub stats: Option<String>,
}

/// Runs one closed-loop load generation against a listening daemon.
///
/// # Errors
///
/// Propagates connection and send-side I/O errors.
///
/// # Panics
///
/// Panics if the response-reader thread panicked.
pub fn run(
    addr: SocketAddr,
    workload: &Workload,
    config: &LoadgenConfig,
) -> std::io::Result<LoadReport> {
    let stream = TcpStream::connect(addr)?;
    let mut writer = stream.try_clone()?;
    let reader = std::thread::spawn(move || collect_responses(stream));

    let clock = MonotonicClock::start();
    let mut sent: u64 = 0;
    for request in RequestSource::new(workload, config.rate_hz, config.requests, config.seed) {
        clock.sleep(request.arrival.saturating_since(clock.now()));
        wire::write_frame(
            &mut writer,
            &WireRequest {
                id: request.id,
                tenant: request.tenant,
                network: request.network,
            }
            .to_json(),
        )?;
        sent += 1;
    }
    wire::write_frame(&mut writer, &wire::drain_frame())?;

    // lint:allow(P002) a panicked reader thread is unrecoverable here
    let (served, shed, breakdown, stats) = reader.join().expect("response reader");
    Ok(LoadReport {
        sent,
        served,
        shed,
        breakdown,
        stats,
    })
}

/// Drains the response stream until the stats frame (or EOF), tallying
/// outcomes.
fn collect_responses(mut stream: TcpStream) -> (u64, u64, LatencyBreakdown, Option<String>) {
    let mut served: u64 = 0;
    let mut shed: u64 = 0;
    let mut breakdown = LatencyBreakdown::default();
    let mut stats = None;
    while let Ok(Some(body)) = wire::read_frame(&mut stream) {
        if let Some(response) = wire::parse_response(&body) {
            if response.served {
                served += 1;
                breakdown.record(response.wait_ns, response.service_ns);
            } else {
                shed += 1;
            }
        } else if body.contains("\"schema\":\"pixel.serve.stats\"") {
            stats = Some(body);
            break;
        }
    }
    (served, shed, breakdown, stats)
}
