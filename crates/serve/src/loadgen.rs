//! Deterministic closed-loop load generator for `pixel-served`.
//!
//! The generator replays the *same* seeded Poisson request sequence the
//! simulator consumes ([`RequestSource`]: the tenant/network draws are
//! rate-independent, so one seed couples a simulated run and a live run
//! as common random numbers) — paced against a [`MonotonicClock`]: each
//! request is sent when the live clock reaches its scheduled arrival
//! instant. A reader thread tracks every response, folding the
//! daemon-reported wait/service nanoseconds into a
//! [`LatencyBreakdown`]; after the last request the generator sends
//! `drain` and waits for the daemon's `pixel.serve.stats` frame, making
//! the run fully closed-loop: when [`run`] returns, every request has
//! been accounted served or shed.

use crate::arrivals::{RequestSource, Workload};
use crate::clock::{Clock, MonotonicClock};
use crate::flightrec::LatencyBreakdown;
use crate::wire::{self, WireRequest};
use pixel_units::rng::SplitMix64;
use std::net::{SocketAddr, TcpStream};

/// Parameters of one load-generation run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LoadgenConfig {
    /// Offered arrival rate \[requests/s\] on the live clock, summed
    /// over all connections.
    pub rate_hz: f64,
    /// Requests to send, split across connections.
    pub requests: usize,
    /// Seed of the arrival process (shared with the simulator for
    /// common-random-number comparisons).
    pub seed: u64,
    /// Parallel client connections. `1` preserves the exact legacy
    /// single-stream sequence — `seed` feeds [`RequestSource`] directly,
    /// keeping the simulator/daemon common-random-number coupling the
    /// oracle depends on. With `n > 1` connections, each gets its own
    /// sub-stream (seeded from a [`SplitMix64`] root over `seed`) at
    /// `rate_hz / n`, with the request count split as evenly as
    /// possible.
    pub connections: usize,
}

/// What one load-generation run measured, from the client's side of
/// the socket.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LoadReport {
    /// Requests sent.
    pub sent: u64,
    /// Requests the daemon answered `served`.
    pub served: u64,
    /// Requests the daemon answered `shed`.
    pub shed: u64,
    /// Daemon-reported wait/service decomposition of the served
    /// requests.
    pub breakdown: LatencyBreakdown,
    /// The raw `pixel.serve.stats` frame body, when the daemon sent
    /// one.
    pub stats: Option<String>,
}

/// Runs one closed-loop load generation against a listening daemon.
///
/// With one connection this is the exact legacy single-stream path;
/// with several, each connection paces its own seeded sub-stream on a
/// shared monotonic clock, the `drain` control goes out once every
/// sender has finished, and the per-connection tallies are merged
/// (exact [`LatencyBreakdown`] histogram merge).
///
/// # Errors
///
/// Propagates connection and send-side I/O errors.
///
/// # Panics
///
/// Panics if a response-reader or sender thread panicked.
pub fn run(
    addr: SocketAddr,
    workload: &Workload,
    config: &LoadgenConfig,
) -> std::io::Result<LoadReport> {
    let connections = config.connections.max(1);
    if connections == 1 {
        return run_single(addr, workload, config);
    }
    let mut seeds = SplitMix64::seed_from_u64(config.seed);
    #[allow(clippy::cast_precision_loss)]
    let plans: Vec<(f64, usize, u64)> = (0..connections)
        .map(|i| {
            (
                config.rate_hz / connections as f64,
                config.requests / connections + usize::from(i < config.requests % connections),
                seeds.next_u64(),
            )
        })
        .collect();

    let mut writers = Vec::with_capacity(connections);
    let mut readers = Vec::with_capacity(connections);
    for _ in 0..connections {
        let stream = TcpStream::connect(addr)?;
        writers.push(stream.try_clone()?);
        readers.push(std::thread::spawn(move || collect_responses(stream)));
    }

    let clock = MonotonicClock::start();
    let sent = std::thread::scope(|scope| -> std::io::Result<u64> {
        let senders: Vec<_> = writers
            .iter_mut()
            .zip(&plans)
            .map(|(writer, &(rate_hz, requests, seed))| {
                scope.spawn(move || send_stream(writer, workload, rate_hz, requests, seed, clock))
            })
            .collect();
        let mut sent: u64 = 0;
        for sender in senders {
            // lint:allow(P002,C003) senders are joined in spawn order and the u64 sum is order-free; a panicked sender is unrecoverable
            sent += sender.join().expect("sender thread")?;
        }
        Ok(sent)
    })?;
    wire::write_frame(&mut writers[0], &wire::drain_frame())?;

    let mut report = LoadReport {
        sent,
        served: 0,
        shed: 0,
        breakdown: LatencyBreakdown::default(),
        stats: None,
    };
    for reader in readers {
        // lint:allow(P002) a panicked reader thread is unrecoverable here
        let (served, shed, breakdown, stats) = reader.join().expect("response reader");
        report.served += served;
        report.shed += shed;
        report.breakdown.merge(&breakdown);
        if report.stats.is_none() {
            report.stats = stats;
        }
    }
    Ok(report)
}

/// The legacy single-connection path: one stream, `config.seed` fed to
/// the [`RequestSource`] unchanged.
fn run_single(
    addr: SocketAddr,
    workload: &Workload,
    config: &LoadgenConfig,
) -> std::io::Result<LoadReport> {
    let stream = TcpStream::connect(addr)?;
    let mut writer = stream.try_clone()?;
    let reader = std::thread::spawn(move || collect_responses(stream));

    let clock = MonotonicClock::start();
    let sent = send_stream(
        &mut writer,
        workload,
        config.rate_hz,
        config.requests,
        config.seed,
        clock,
    )?;
    wire::write_frame(&mut writer, &wire::drain_frame())?;

    // lint:allow(P002) a panicked reader thread is unrecoverable here
    let (served, shed, breakdown, stats) = reader.join().expect("response reader");
    Ok(LoadReport {
        sent,
        served,
        shed,
        breakdown,
        stats,
    })
}

/// Paces one seeded request stream onto a connection against `clock`.
fn send_stream(
    writer: &mut TcpStream,
    workload: &Workload,
    rate_hz: f64,
    requests: usize,
    seed: u64,
    clock: MonotonicClock,
) -> std::io::Result<u64> {
    let mut sent: u64 = 0;
    for request in RequestSource::new(workload, rate_hz, requests, seed) {
        clock.sleep(request.arrival.saturating_since(clock.now()));
        wire::write_frame(
            writer,
            &WireRequest {
                id: request.id,
                tenant: request.tenant,
                network: request.network,
            }
            .to_json(),
        )?;
        sent += 1;
    }
    Ok(sent)
}

/// Drains one connection's response stream until the stats frame (or
/// EOF), tallying outcomes.
fn collect_responses(mut stream: TcpStream) -> (u64, u64, LatencyBreakdown, Option<String>) {
    let mut served: u64 = 0;
    let mut shed: u64 = 0;
    let mut breakdown = LatencyBreakdown::default();
    let mut stats = None;
    while let Ok(Some(body)) = wire::read_frame(&mut stream) {
        if let Some(response) = wire::parse_response(&body) {
            if response.served {
                served += 1;
                breakdown.record(response.wait_ns, response.service_ns);
            } else {
                shed += 1;
            }
        } else if body.contains("\"schema\":\"pixel.serve.stats\"") {
            stats = Some(body);
            break;
        }
    }
    (served, shed, breakdown, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batching::BatchPolicy;
    use crate::daemon::{self, DaemonConfig, ServiceMode};
    use crate::queue::ShedPolicy;
    use crate::sim::ServeConfig;
    use pixel_core::config::{AcceleratorConfig, Design};
    use pixel_core::model::EvalContext;
    use pixel_units::Time;
    use std::net::TcpListener;

    #[test]
    fn multi_connection_load_is_fully_accounted() {
        let workload = Workload::paper_mix();
        let ctx = EvalContext::new();
        let mut serve = ServeConfig::new(AcceleratorConfig::new(Design::Oo, 4, 16), 60.0, 30, 11);
        serve.policy = BatchPolicy::Dynamic {
            max_size: 4,
            deadline: Time::ZERO,
        };
        serve.queue_capacity = 64;
        serve.shed = ShedPolicy::DropNewest;
        let config = DaemonConfig {
            serve,
            time_scale: 1e-3,
            mode: ServiceMode::Analytic,
            event_capacity: 256,
        };
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        std::thread::scope(|scope| {
            let daemon = scope.spawn(|| daemon::run(listener, &workload, &ctx, &config).unwrap());
            let report = run(
                addr,
                &workload,
                &LoadgenConfig {
                    rate_hz: 200.0,
                    requests: 30,
                    seed: 11,
                    connections: 3,
                },
            )
            .unwrap();
            // Closed loop across all three connections: every request
            // is accounted served or shed, and the drain connection got
            // the daemon's stats frame.
            assert_eq!(report.sent, 30);
            assert_eq!(report.served + report.shed, report.sent);
            assert_eq!(report.breakdown.count(), report.served);
            assert!(report.stats.is_some(), "stats frame reached conn 0");
            let (daemon_report, _) = daemon.join().unwrap();
            assert_eq!(daemon_report.arrivals, 30);
            assert_eq!(
                daemon_report.completed + daemon_report.dropped,
                daemon_report.arrivals
            );
        });
    }

    #[test]
    fn connection_plans_split_requests_and_rate_evenly() {
        // The split logic is pure arithmetic — mirror it here to pin
        // the contract: counts differ by at most one and sum exactly.
        let (requests, connections) = (31usize, 4usize);
        let counts: Vec<usize> = (0..connections)
            .map(|i| requests / connections + usize::from(i < requests % connections))
            .collect();
        assert_eq!(counts.iter().sum::<usize>(), requests);
        assert_eq!(counts, vec![8, 8, 8, 7]);
    }
}
