//! Deterministic request generation: tenants and Poisson arrivals.
//!
//! A [`Workload`] is a set of weighted tenants, each sending its own
//! [`NetworkMix`] over a shared network list (the paper's six CNNs by
//! default). [`RequestSource`] turns a workload into a Poisson arrival
//! stream: exponential inter-arrival gaps at a configurable rate, with
//! the tenant and network of each request drawn from the same seeded
//! [`SplitMix64`] stream.
//!
//! The draw order per request is fixed (gap, then tenant, then network)
//! and the gap is sampled at *unit* rate and scaled by `1/rate`, so two
//! sources with the same seed but different rates see the **same request
//! sequence on a compressed clock** (common random numbers). Load sweeps
//! built this way are coupled: raising the offered rate can only make
//! queueing worse, which keeps measured latency percentiles monotone in
//! load and pins saturation knees sharply.

use pixel_dnn::mix::NetworkMix;
use pixel_dnn::network::Network;
use pixel_dnn::zoo;
use pixel_units::rng::SplitMix64;
use pixel_units::{Time, VirtInstant};

/// One inference request.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Request {
    /// Admission-order id (0-based arrival sequence number).
    pub id: u64,
    /// Index into [`Workload::tenants`].
    pub tenant: usize,
    /// Index into [`Workload::networks`].
    pub network: usize,
    /// Arrival instant on the serving clock (virtual in the simulator,
    /// monotonic in the daemon).
    pub arrival: VirtInstant,
}

/// One tenant: a share of the offered traffic and its network blend.
#[derive(Debug, Clone, PartialEq)]
pub struct Tenant {
    /// Tenant name.
    pub name: String,
    /// Share of total traffic (normalized against the other tenants).
    pub weight: f64,
    /// The tenant's blend over [`Workload::networks`] indices.
    pub mix: NetworkMix,
}

/// A serving workload: shared network list plus weighted tenants.
#[derive(Debug, Clone, PartialEq)]
pub struct Workload {
    networks: Vec<Network>,
    tenants: Vec<Tenant>,
    /// Tenant selection as a categorical mix over tenant indices.
    tenant_mix: NetworkMix,
}

impl Workload {
    /// Builds a workload over an explicit network list.
    ///
    /// # Panics
    ///
    /// Panics if there are no tenants, or a tenant mix references a
    /// network index outside `networks`.
    #[must_use]
    pub fn new(networks: Vec<Network>, tenants: Vec<Tenant>) -> Self {
        assert!(!tenants.is_empty(), "a workload needs at least one tenant");
        for tenant in &tenants {
            for &(index, _) in tenant.mix.entries() {
                assert!(
                    index < networks.len(),
                    "tenant {:?} references network {index} outside the list of {}",
                    tenant.name,
                    networks.len()
                );
            }
        }
        let weights: Vec<(usize, f64)> = tenants
            .iter()
            .enumerate()
            .map(|(i, t)| (i, t.weight))
            .collect();
        let tenant_mix = NetworkMix::new("tenants", &weights);
        Self {
            networks,
            tenants,
            tenant_mix,
        }
    }

    /// The default serving workload: three tenants with distinct blends
    /// over the six evaluated CNNs (zoo order: VGG16, AlexNet, ZFNet,
    /// ResNet-34, LeNet, GoogLeNet).
    ///
    /// * `vision-api` (50 % of traffic) — heavyweight classifiers.
    /// * `mobile` (30 %) — small nets dominated by LeNet.
    /// * `batch-lab` (20 %) — a uniform research blend.
    #[must_use]
    pub fn paper_mix() -> Self {
        let networks = zoo::all_networks();
        let tenants = vec![
            Tenant {
                name: "vision-api".to_owned(),
                weight: 0.5,
                mix: NetworkMix::new("vision-api", &[(0, 0.45), (3, 0.35), (5, 0.20)]),
            },
            Tenant {
                name: "mobile".to_owned(),
                weight: 0.3,
                mix: NetworkMix::new("mobile", &[(4, 0.70), (1, 0.20), (2, 0.10)]),
            },
            Tenant {
                name: "batch-lab".to_owned(),
                weight: 0.2,
                mix: NetworkMix::new(
                    "batch-lab",
                    &[(0, 1.0), (1, 1.0), (2, 1.0), (3, 1.0), (4, 1.0), (5, 1.0)],
                ),
            },
        ];
        Self::new(networks, tenants)
    }

    /// The shared network list.
    #[must_use]
    pub fn networks(&self) -> &[Network] {
        &self.networks
    }

    /// The tenants.
    #[must_use]
    pub fn tenants(&self) -> &[Tenant] {
        &self.tenants
    }

    /// Overall fraction of traffic hitting each network: the
    /// tenant-weighted sum of per-tenant mix fractions.
    #[must_use]
    pub fn network_fractions(&self) -> Vec<f64> {
        let mut fractions = vec![0.0; self.networks.len()];
        for (t, tenant) in self.tenants.iter().enumerate() {
            let share = self.tenant_mix.fraction(t);
            for (slot, &(network, _)) in tenant.mix.entries().iter().enumerate() {
                fractions[network] += share * tenant.mix.fraction(slot);
            }
        }
        fractions
    }

    /// Draws one `(tenant, network)` pair (two stream values).
    fn sample(&self, rng: &mut SplitMix64) -> (usize, usize) {
        let tenant = self.tenant_mix.sample(rng);
        let network = self.tenants[tenant].mix.sample(rng);
        (tenant, network)
    }
}

/// A finite Poisson arrival stream over a workload.
#[derive(Debug, Clone)]
pub struct RequestSource<'a> {
    workload: &'a Workload,
    rate_hz: f64,
    remaining: usize,
    clock: VirtInstant,
    next_id: u64,
    rng: SplitMix64,
}

impl<'a> RequestSource<'a> {
    /// A source emitting `count` requests at `rate_hz` mean arrivals per
    /// second, deterministically from `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `rate_hz` is not finite and positive.
    #[must_use]
    pub fn new(workload: &'a Workload, rate_hz: f64, count: usize, seed: u64) -> Self {
        assert!(
            rate_hz.is_finite() && rate_hz > 0.0,
            "arrival rate must be positive, got {rate_hz}"
        );
        Self {
            workload,
            rate_hz,
            remaining: count,
            clock: VirtInstant::EPOCH,
            next_id: 0,
            rng: SplitMix64::seed_from_u64(seed),
        }
    }
}

impl Iterator for RequestSource<'_> {
    type Item = Request;

    fn next(&mut self) -> Option<Request> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        // Unit-rate exponential gap, scaled by 1/rate: the u-sequence (and
        // everything after it) is rate-independent.
        let u = self.rng.next_f64();
        let gap = -(1.0 - u).ln() / self.rate_hz;
        self.clock += Time::new(gap);
        let (tenant, network) = self.workload.sample(&mut self.rng);
        let request = Request {
            id: self.next_id,
            tenant,
            network,
            arrival: self.clock,
        };
        self.next_id += 1;
        Some(request)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_mix_is_consistent() {
        let w = Workload::paper_mix();
        assert_eq!(w.networks().len(), 6);
        assert_eq!(w.tenants().len(), 3);
        let fractions = w.network_fractions();
        let total: f64 = fractions.iter().sum();
        assert!((total - 1.0).abs() < 1e-12, "fractions sum to {total}");
        assert!(fractions.iter().all(|&f| f > 0.0));
    }

    #[test]
    fn arrivals_are_ordered_and_mean_gap_matches_rate() {
        let w = Workload::paper_mix();
        let requests: Vec<Request> = RequestSource::new(&w, 100.0, 20_000, 7).collect();
        assert_eq!(requests.len(), 20_000);
        assert!(requests.windows(2).all(|p| p[0].arrival <= p[1].arrival));
        assert!(requests.windows(2).all(|p| p[0].id + 1 == p[1].id));
        let mean_gap = requests.last().unwrap().arrival.as_secs() / 20_000.0;
        assert!((mean_gap - 0.01).abs() < 0.001, "mean gap {mean_gap}");
    }

    #[test]
    fn rate_only_rescales_the_clock() {
        let w = Workload::paper_mix();
        let slow: Vec<Request> = RequestSource::new(&w, 10.0, 500, 3).collect();
        let fast: Vec<Request> = RequestSource::new(&w, 40.0, 500, 3).collect();
        for (a, b) in slow.iter().zip(&fast) {
            assert_eq!((a.tenant, a.network), (b.tenant, b.network));
            assert!((a.arrival.as_secs() / 4.0 - b.arrival.as_secs()).abs() < 1e-12);
        }
    }

    #[test]
    fn tenant_shares_are_respected() {
        let w = Workload::paper_mix();
        let requests: Vec<Request> = RequestSource::new(&w, 1000.0, 60_000, 11).collect();
        #[allow(clippy::cast_precision_loss)]
        let share = |t: usize| {
            requests.iter().filter(|r| r.tenant == t).count() as f64 / requests.len() as f64
        };
        assert!((share(0) - 0.5).abs() < 0.01);
        assert!((share(1) - 0.3).abs() < 0.01);
        assert!((share(2) - 0.2).abs() < 0.01);
    }

    #[test]
    #[should_panic(expected = "arrival rate")]
    fn rejects_nonpositive_rate() {
        let w = Workload::paper_mix();
        let _ = RequestSource::new(&w, 0.0, 1, 0);
    }
}
