//! The simulator-as-oracle check: the live daemon must behave as the
//! discrete-event simulator predicts.
//!
//! For each probed load the oracle runs the **same** workload, seed,
//! policy, and accelerator twice:
//!
//! 1. **Predicted** — `sim::simulate` on the virtual clock at
//!    `rate = load × reference_capacity`.
//! 2. **Measured** — a real `pixel-served` daemon on a loopback socket
//!    (analytic service mode), fed by the closed-loop load generator at
//!    the time-compressed rate `rate / time_scale`, with batch service
//!    sleeping `modeled latency × time_scale`.
//!
//! Because [`crate::arrivals::RequestSource`] draws the identical
//! request sequence at any rate (common random numbers) and queueing
//! dynamics are invariant under uniform time scaling, the live run is
//! the simulated run replayed in compressed wall time — so simulated
//! quantities predict measured ones up to sleep/scheduling overhead.
//!
//! ## Contract and tolerances (documented, pinned by `ci.sh`)
//!
//! * **Knee agreement** — [`crate::saturation::saturated`] must
//!   classify the live and simulated points identically at every load.
//!   The probe loads 0.6× and 1.5× capacity sit on opposite sides of
//!   the knee, and because both runs replay the *same* finite arrival
//!   sample, even a sample whose empirical rate drifts toward the
//!   goodput threshold drifts identically on both sides — the
//!   classifications flip together, never apart.
//! * **Drop rate** — absolute difference ≤ 0.10.
//! * **Service time** — live p50 (rescaled by `1 / time_scale`) within
//!   [0.6, 1.6]× the simulated p50: sleeps only overshoot, so the live
//!   value reads high; the window is asymmetric-tolerant in both
//!   directions to stay robust on loaded CI machines.
//! * **Wait share** — p50 queue-wait fraction `wait / (wait + service)`
//!   within ±0.25 absolute: the scale-free signature of where the
//!   sojourn goes, the quantity the refactor is accountable for.
//!
//! Medians, not tails: p99-class statistics of a few hundred requests
//! are noise-dominated under time compression; p50s are stable.

use crate::arrivals::Workload;
use crate::daemon::{self, DaemonConfig, ServiceMode};
use crate::loadgen::{self, LoadgenConfig};
use crate::report::ServeReport;
use crate::saturation::{reference_capacity, saturated};
use crate::sim::{simulate, ServeConfig};
use pixel_core::config::{AcceleratorConfig, Design};
use pixel_core::model::EvalContext;
use std::net::TcpListener;

/// Parameters of one oracle run.
#[derive(Debug, Clone, PartialEq)]
pub struct OracleSpec {
    /// Probed loads as fractions of reference capacity (chosen far from
    /// the knee on both sides).
    pub loads: Vec<f64>,
    /// Requests per point.
    pub requests: usize,
    /// Shared arrival seed (common random numbers between sim and
    /// live).
    pub seed: u64,
    /// Live time compression: the daemon sleeps `latency × scale` and
    /// the generator offers `rate / scale`.
    pub time_scale: f64,
    /// Lanes per OMAC.
    pub lanes: usize,
    /// Bits per lane.
    pub bits_per_lane: u32,
}

impl OracleSpec {
    /// The CI oracle setup: OO 4×16, one load on each side of the knee,
    /// 20× time compression. The scale is deliberately gentle: at 100×
    /// the live queue waits shrink to single-digit milliseconds of wall
    /// time and OS scheduling latency distorts the wait/service split;
    /// at 20× the live wait-share tracks the simulator within a few
    /// hundredths.
    #[must_use]
    pub fn artifact(seed: u64, quick: bool) -> Self {
        Self {
            loads: vec![0.6, 1.5],
            requests: if quick { 150 } else { 400 },
            seed,
            time_scale: 0.05,
            lanes: 4,
            bits_per_lane: 16,
        }
    }
}

/// One tolerance check at one load.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OracleCheck {
    /// Short check name.
    pub name: &'static str,
    /// Human-readable predicted-vs-measured detail.
    pub detail: String,
    /// Whether the measurement fell inside the tolerance.
    pub pass: bool,
}

/// Predicted and measured reports at one load, with their checks.
#[derive(Debug, Clone, PartialEq)]
pub struct OraclePoint {
    /// Load as a fraction of reference capacity.
    pub load: f64,
    /// The simulator's prediction.
    pub sim: ServeReport,
    /// The live daemon's measurement.
    pub live: ServeReport,
    /// Tolerance checks.
    pub checks: Vec<OracleCheck>,
}

impl OraclePoint {
    /// True when every check at this point passed.
    #[must_use]
    pub fn passed(&self) -> bool {
        self.checks.iter().all(|c| c.pass)
    }
}

/// Runs the full oracle: one simulated and one live run per load.
///
/// # Errors
///
/// Propagates socket I/O errors from the daemon or load generator.
///
/// # Panics
///
/// Panics if the daemon thread panics.
pub fn run_oracle(spec: &OracleSpec) -> std::io::Result<Vec<OraclePoint>> {
    let _span = pixel_obs::span("serve/oracle");
    let workload = Workload::paper_mix();
    let ctx = EvalContext::new();
    let accel = AcceleratorConfig::new(Design::Oo, spec.lanes, spec.bits_per_lane);
    let mut points = Vec::with_capacity(spec.loads.len());
    for &load in &spec.loads {
        let template = ServeConfig::new(accel, 1.0, spec.requests, spec.seed);
        let capacity = reference_capacity(&ctx, &workload, &accel, template.policy.max_batch());
        let sim_rate = capacity * load;
        let sim_config = ServeConfig {
            rate_hz: sim_rate,
            ..template
        };
        let sim_report = simulate(&workload, &ctx, &sim_config);

        let live_rate = sim_rate / spec.time_scale;
        let daemon_config = DaemonConfig {
            serve: ServeConfig {
                rate_hz: live_rate,
                ..template
            },
            time_scale: spec.time_scale,
            mode: ServiceMode::Analytic,
            event_capacity: 0,
        };
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let addr = listener.local_addr()?;
        let live_report = std::thread::scope(|scope| {
            let daemon = scope.spawn(|| daemon::run(listener, &workload, &ctx, &daemon_config));
            let load_result = loadgen::run(
                addr,
                &workload,
                &LoadgenConfig {
                    rate_hz: live_rate,
                    requests: spec.requests,
                    seed: spec.seed,
                    connections: 1,
                },
            );
            // lint:allow(P002) a panicked daemon thread is unrecoverable here
            let daemon_result = daemon.join().expect("daemon thread");
            load_result.and_then(|_| daemon_result.map(|(report, _)| report))
        })?;

        let checks = check_point(&sim_report, &live_report, spec.time_scale);
        points.push(OraclePoint {
            load,
            sim: sim_report,
            live: live_report,
            checks,
        });
    }
    Ok(points)
}

/// Applies the documented tolerances to one predicted/measured pair.
#[must_use]
pub fn check_point(sim: &ServeReport, live: &ServeReport, time_scale: f64) -> Vec<OracleCheck> {
    let mut checks = Vec::new();

    let sim_knee = saturated(sim);
    let live_knee = saturated(live);
    checks.push(OracleCheck {
        name: "knee",
        detail: format!(
            "sim saturated={sim_knee} (goodput {:.3}) live saturated={live_knee} (goodput {:.3})",
            sim.goodput_ratio(),
            live.goodput_ratio()
        ),
        pass: sim_knee == live_knee,
    });

    let drop_diff = (sim.drop_rate() - live.drop_rate()).abs();
    checks.push(OracleCheck {
        name: "drop-rate",
        detail: format!(
            "sim {:.4} live {:.4} |diff| {drop_diff:.4} (tol 0.10)",
            sim.drop_rate(),
            live.drop_rate()
        ),
        pass: drop_diff <= 0.10,
    });

    let sim_service = sim.service.p50.value();
    let live_service = live.service.p50.value() / time_scale;
    let service_ratio = if sim_service > 0.0 {
        live_service / sim_service
    } else {
        1.0
    };
    checks.push(OracleCheck {
        name: "service-p50",
        detail: format!(
            "sim {sim_service:.4} s live/scale {live_service:.4} s ratio {service_ratio:.3} (tol [0.6, 1.6])"
        ),
        pass: (0.6..=1.6).contains(&service_ratio),
    });

    let share = |report: &ServeReport| {
        let wait = report.queue_wait.p50.value();
        let service = report.service.p50.value();
        if wait + service > 0.0 {
            wait / (wait + service)
        } else {
            0.0
        }
    };
    let sim_share = share(sim);
    let live_share = share(live);
    let share_diff = (sim_share - live_share).abs();
    checks.push(OracleCheck {
        name: "wait-share",
        detail: format!(
            "sim {sim_share:.3} live {live_share:.3} |diff| {share_diff:.3} (tol 0.25)"
        ),
        pass: share_diff <= 0.25,
    });

    checks
}

/// Renders the oracle outcome as the text block `ci.sh` greps.
#[must_use]
pub fn render(spec: &OracleSpec, points: &[OraclePoint]) -> String {
    let mut out = String::new();
    out.push_str("pixel-served oracle: simulator-predicted vs live-measured\n");
    out.push_str(&format!(
        "  requests/point {}  time-scale {}  seed {}\n",
        spec.requests, spec.time_scale, spec.seed
    ));
    for point in points {
        out.push_str(&format!(
            "load {:.2}x capacity (offered sim {:.3}/s, live {:.3}/s)\n",
            point.load, point.sim.offered_hz, point.live.offered_hz
        ));
        for check in &point.checks {
            out.push_str(&format!(
                "  [{}] {:<12} {}\n",
                if check.pass { "PASS" } else { "FAIL" },
                check.name,
                check.detail
            ));
        }
    }
    out.push_str(if points.iter().all(OraclePoint::passed) {
        "oracle: PASS\n"
    } else {
        "oracle: FAIL\n"
    });
    out
}

/// CLI entry shared by `pixel-served oracle` and `reproduce oracle`:
/// `[--quick] [--seed N]`. Returns the process exit code.
#[must_use]
pub fn run_cli(args: &[String]) -> u8 {
    let quick = args.iter().any(|a| a == "--quick");
    let mut seed = 2026u64;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        if arg == "--seed" {
            if let Some(value) = iter.next().and_then(|v| v.parse().ok()) {
                seed = value;
            }
        }
    }
    let spec = OracleSpec::artifact(seed, quick);
    match run_oracle(&spec) {
        Ok(points) => {
            print!("{}", render(&spec, &points));
            u8::from(!points.iter().all(OraclePoint::passed))
        }
        Err(e) => {
            eprintln!("oracle: I/O error: {e}");
            2
        }
    }
}
