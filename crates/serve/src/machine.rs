//! The pure serving state machine: admission, batching, shedding, and
//! all windowed/event/latency accounting — with no clock of its own.
//!
//! [`ServeMachine`] owns every policy decision the serving system makes
//! (bounded-queue admission with drop-newest/drop-oldest shedding,
//! fixed and deadline-triggered dynamic batching, flight-recorder
//! eventing, [`WindowSeries`]/[`LatencyBreakdown`] accounting) as a
//! state machine over *fed* [`VirtInstant`]s: it never reads a clock.
//! The discrete-event simulator feeds it virtual instants; the
//! `pixel-served` daemon feeds it a monotonic clock's instants. Same
//! machine, same decisions — which is what lets the simulator act as a
//! quantitative oracle for the live process (and what the replay
//! property test pins: identical event sequences produce identical
//! decisions regardless of the clock's epoch).
//!
//! Two dispatch/completion flavors cover the two drivers:
//!
//! * **Planned** ([`ServeMachine::dispatch`] +
//!   [`ServeMachine::complete`]): the service cost is known at dispatch
//!   (the simulator's analytic model), so the completion instant is
//!   scheduled up front and busy/energy windows are charged
//!   immediately. This path reproduces the original simulator's
//!   accounting order bitwise.
//! * **Open** ([`ServeMachine::dispatch_open`] +
//!   [`ServeMachine::complete_measured`]): the daemon dispatches
//!   without knowing how long service will take and reports the
//!   measured completion instant (and energy) afterwards; busy/energy
//!   windows are charged over the measured span.

use crate::arrivals::{Request, Workload};
use crate::batching::{BatchPolicy, Decision};
use crate::flightrec::{FlightData, FlightRecorder, LatencyBreakdown, ServeEvent};
use crate::percentile::LatencyHistogram;
use crate::queue::{AdmissionQueue, ShedPolicy};
use crate::report::{LatencyPercentiles, NetworkStats, ServeReport, TenantStats};
use crate::window::WindowSeries;
use pixel_core::config::AcceleratorConfig;
use pixel_units::{Energy, Power, Time, VirtInstant};

/// Structural parameters of a [`ServeMachine`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MachineConfig {
    /// Batch-formation policy.
    pub policy: BatchPolicy,
    /// Admission-queue bound.
    pub queue_capacity: usize,
    /// What to shed when the queue is full.
    pub shed: ShedPolicy,
    /// Base bin width of the windowed time-series grid.
    pub window_width: Time,
    /// Maximum bin count of the grid (coarsens beyond it).
    pub window_max_bins: usize,
    /// Flight-recorder ring depth (0 = count-only).
    pub event_capacity: usize,
    /// Number of tenants (sizes the per-tenant breakdowns).
    pub tenants: usize,
    /// Number of networks (sizes the per-network breakdowns).
    pub networks: usize,
}

/// What [`ServeMachine::admit`] did with an arrival.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Admission {
    /// The request was admitted to the queue.
    Admitted,
    /// The arriving request itself was shed (drop-newest on a full
    /// queue).
    ShedArrival,
    /// The oldest waiting request was evicted to admit the arrival
    /// (drop-oldest).
    ShedOldest {
        /// The evicted request.
        victim: Request,
    },
}

/// A batch handed to the caller by [`ServeMachine::dispatch_open`]: the
/// caller services it and reports back with
/// [`ServeMachine::complete_measured`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OpenDispatch {
    /// Batch sequence number.
    pub batch: u64,
    /// Network index the batch runs.
    pub network: usize,
    /// Requests in the batch.
    pub size: usize,
}

/// Run-level metadata [`ServeMachine::finish`] folds into the report.
#[derive(Debug, Clone, Copy)]
pub struct FinishMeta {
    /// The accelerator that served the run.
    pub accel: AcceleratorConfig,
    /// Offered arrival rate \[requests/s\].
    pub offered_hz: f64,
    /// Always-on power charged over the makespan.
    pub static_power: Power,
    /// Total arrivals the driver generated.
    pub arrivals: u64,
}

/// The in-flight batch. `completes_at` is scheduled for planned
/// dispatches and `None` for open ones.
struct InFlight {
    completes_at: Option<VirtInstant>,
    started_at: VirtInstant,
    id: u64,
    batch: Vec<Request>,
}

/// The pure serving state machine (see the module docs).
pub struct ServeMachine {
    clock: VirtInstant,
    queue: AdmissionQueue,
    server: Option<InFlight>,
    policy: BatchPolicy,
    overall: LatencyBreakdown,
    tenant_lat: Vec<LatencyBreakdown>,
    network_lat: Vec<LatencyBreakdown>,
    tenant_completed: Vec<u64>,
    network_completed: Vec<u64>,
    completed: u64,
    shed: u64,
    dispatches: u64,
    batch_seq: u64,
    batched_total: u64,
    busy_time: Time,
    dynamic_energy: Energy,
    last_completion: VirtInstant,
    recorder: FlightRecorder,
    spill: bool,
    windows: WindowSeries,
}

impl ServeMachine {
    /// A fresh machine at the clock's epoch.
    #[must_use]
    pub fn new(config: &MachineConfig) -> Self {
        Self {
            clock: VirtInstant::EPOCH,
            queue: AdmissionQueue::new(config.queue_capacity, config.shed),
            server: None,
            policy: config.policy,
            overall: LatencyBreakdown::default(),
            tenant_lat: vec![LatencyBreakdown::default(); config.tenants],
            network_lat: vec![LatencyBreakdown::default(); config.networks],
            tenant_completed: vec![0; config.tenants],
            network_completed: vec![0; config.networks],
            completed: 0,
            shed: 0,
            dispatches: 0,
            batch_seq: 0,
            batched_total: 0,
            busy_time: Time::ZERO,
            dynamic_energy: Energy::ZERO,
            last_completion: VirtInstant::EPOCH,
            recorder: FlightRecorder::new(config.event_capacity),
            spill: pixel_obs::enabled() && pixel_obs::has_trace(),
            windows: WindowSeries::new(config.window_width, config.window_max_bins),
        }
    }

    /// The machine's notion of now: the latest instant it has been fed.
    #[must_use]
    pub fn now(&self) -> VirtInstant {
        self.clock
    }

    /// Advances the machine's clock monotonically to `now` (instants in
    /// the past are ignored — the clock never regresses).
    pub fn advance_to(&mut self, now: VirtInstant) {
        self.clock = self.clock.max(now);
    }

    /// True while a dispatched batch is in flight.
    #[must_use]
    pub fn is_busy(&self) -> bool {
        self.server.is_some()
    }

    /// Scheduled completion instant of the in-flight planned batch.
    #[must_use]
    pub fn planned_completion(&self) -> Option<VirtInstant> {
        self.server.as_ref().and_then(|f| f.completes_at)
    }

    /// Current queue depth.
    #[must_use]
    pub fn queue_depth(&self) -> usize {
        self.queue.depth()
    }

    /// True when no requests wait.
    #[must_use]
    pub fn queue_is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// Requests shed so far.
    #[must_use]
    pub fn shed_total(&self) -> u64 {
        self.shed
    }

    /// Requests completed so far.
    #[must_use]
    pub fn completed_total(&self) -> u64 {
        self.completed
    }

    /// Records one lifecycle event in the flight recorder and, when a
    /// trace sink is active, spills it as JSONL.
    fn emit(&mut self, event: ServeEvent) {
        if self.spill {
            pixel_obs::trace_event(&event.to_json());
        }
        self.recorder.record(event);
    }

    /// Offers an arrival to the admission queue at its stamped arrival
    /// instant, advancing the clock to it first.
    pub fn admit(&mut self, request: Request) -> Admission {
        self.clock = self.clock.max(request.arrival);
        pixel_obs::add("serve.arrivals", 1);
        self.windows.count_arrival(self.clock);
        self.emit(ServeEvent::Arrive {
            t_ns: self.clock.to_ns(),
            id: request.id,
            tenant: request.tenant,
            network: request.network,
        });
        let outcome = match self.queue.offer(request.arrival, request) {
            Some(victim) => {
                pixel_obs::add("serve.shed", 1);
                self.windows.count_shed(self.clock);
                self.shed += 1;
                self.emit(ServeEvent::Shed {
                    t_ns: self.clock.to_ns(),
                    id: victim.id,
                    tenant: victim.tenant,
                    network: victim.network,
                });
                if victim.id == request.id {
                    Admission::ShedArrival
                } else {
                    // Drop-oldest: the newcomer took the evicted head's
                    // place.
                    pixel_obs::add("serve.admitted", 1);
                    self.emit(ServeEvent::Enqueue {
                        t_ns: self.clock.to_ns(),
                        id: request.id,
                        depth: self.queue.depth(),
                    });
                    Admission::ShedOldest { victim }
                }
            }
            None => {
                pixel_obs::add("serve.admitted", 1);
                self.emit(ServeEvent::Enqueue {
                    t_ns: self.clock.to_ns(),
                    id: request.id,
                    depth: self.queue.depth(),
                });
                Admission::Admitted
            }
        };
        self.windows.set_depth(self.clock, self.queue.depth());
        outcome
    }

    /// Consults the batching policy at the machine's current instant.
    #[must_use]
    pub fn decide(&self) -> Decision {
        self.policy.decide(&self.queue, self.clock)
    }

    /// Shared dispatch bookkeeping: forms the head batch, counts it,
    /// and emits its formation/start events. Returns the batch and its
    /// sequence id.
    fn form_batch(&mut self) -> (u64, Vec<Request>) {
        let batch = self.queue.take_batch(self.clock, self.policy.max_batch());
        assert!(!batch.is_empty(), "dispatch on an empty queue");
        pixel_obs::add("serve.dispatches", 1);
        #[allow(clippy::cast_precision_loss)]
        pixel_obs::observe("serve.batch_size", batch.len() as f64);
        let id = self.batch_seq;
        self.batch_seq += 1;
        self.dispatches += 1;
        self.batched_total += batch.len() as u64;
        (id, batch)
    }

    /// Dispatches the head batch with a known (planned) service cost:
    /// the completion instant is scheduled now and busy/energy windows
    /// are charged immediately. `cost(network, batch_size)` returns the
    /// batch's service time and dynamic energy.
    ///
    /// # Panics
    ///
    /// Panics if the queue is empty or a batch is already in flight.
    pub fn dispatch(&mut self, cost: impl FnOnce(usize, usize) -> (Time, Energy)) {
        assert!(self.server.is_none(), "dispatch while busy");
        let (id, batch) = self.form_batch();
        let (latency, energy) = cost(batch[0].network, batch.len());
        self.busy_time += latency;
        self.dynamic_energy += energy;
        let completes_at = self.clock + latency;
        self.windows.count_dispatch(self.clock, batch.len() as u64);
        self.windows.set_depth(self.clock, self.queue.depth());
        self.windows.add_busy(self.clock, completes_at);
        self.windows
            .add_energy(self.clock, completes_at, energy.value());
        self.emit(ServeEvent::BatchFormed {
            t_ns: self.clock.to_ns(),
            batch: id,
            network: batch[0].network,
            size: batch.len(),
        });
        self.emit(ServeEvent::ServiceStart {
            t_ns: self.clock.to_ns(),
            batch: id,
        });
        self.server = Some(InFlight {
            completes_at: Some(completes_at),
            started_at: self.clock,
            id,
            batch,
        });
    }

    /// Dispatches the head batch *without* a known cost: the caller
    /// services it for real and reports back through
    /// [`Self::complete_measured`]. Busy/energy accounting is deferred
    /// to completion.
    ///
    /// # Panics
    ///
    /// Panics if the queue is empty or a batch is already in flight.
    pub fn dispatch_open(&mut self) -> OpenDispatch {
        assert!(self.server.is_none(), "dispatch while busy");
        let (id, batch) = self.form_batch();
        self.windows.count_dispatch(self.clock, batch.len() as u64);
        self.windows.set_depth(self.clock, self.queue.depth());
        self.emit(ServeEvent::BatchFormed {
            t_ns: self.clock.to_ns(),
            batch: id,
            network: batch[0].network,
            size: batch.len(),
        });
        self.emit(ServeEvent::ServiceStart {
            t_ns: self.clock.to_ns(),
            batch: id,
        });
        let dispatch = OpenDispatch {
            batch: id,
            network: batch[0].network,
            size: batch.len(),
        };
        self.server = Some(InFlight {
            completes_at: None,
            started_at: self.clock,
            id,
            batch,
        });
        dispatch
    }

    /// Completes the in-flight *planned* batch at its scheduled
    /// instant, advancing the clock to it.
    ///
    /// # Panics
    ///
    /// Panics if no planned batch is in flight.
    pub fn complete(&mut self) {
        // lint:allow(P002) complete() only runs with an in-flight batch; silent recovery would corrupt the clock
        let flight = self.server.take().expect("completion without a batch");
        // lint:allow(P002) planned dispatches always schedule a completion
        let completes_at = flight.completes_at.expect("planned completion instant");
        self.clock = completes_at;
        self.last_completion = completes_at;
        self.windows
            .count_completions(completes_at, flight.batch.len() as u64);
        self.emit(ServeEvent::ServiceEnd {
            t_ns: completes_at.to_ns(),
            batch: flight.id,
            size: flight.batch.len(),
        });
        for request in &flight.batch {
            // Integer nanoseconds: deterministic bucketing, ns
            // resolution. The sojourn rounds the float difference
            // directly, and the split is exact by construction:
            // rounding is monotone (started_at ≤ completes_at), so
            // wait_ns ≤ sojourn_ns and wait + service == sojourn.
            let sojourn_ns = (completes_at - request.arrival).round_nanos();
            let wait_ns = (flight.started_at - request.arrival).round_nanos();
            let service_ns = sojourn_ns - wait_ns;
            self.record_completion(request, wait_ns, service_ns);
        }
    }

    /// Completes the in-flight *open* batch at the measured instant
    /// `at` with measured (or modeled) dynamic energy, charging the
    /// busy/energy windows over the measured span. Returns the batch's
    /// requests so the caller can answer them.
    ///
    /// # Panics
    ///
    /// Panics if no batch is in flight.
    pub fn complete_measured(&mut self, at: VirtInstant, energy: Energy) -> Vec<Request> {
        // lint:allow(P002) complete_measured() only runs with an in-flight batch
        let flight = self.server.take().expect("completion without a batch");
        let at = at.max(flight.started_at);
        self.clock = self.clock.max(at);
        self.last_completion = self.last_completion.max(at);
        self.busy_time += at.saturating_since(flight.started_at);
        self.dynamic_energy += energy;
        self.windows
            .count_completions(at, flight.batch.len() as u64);
        self.windows.add_busy(flight.started_at, at);
        self.windows
            .add_energy(flight.started_at, at, energy.value());
        self.emit(ServeEvent::ServiceEnd {
            t_ns: at.to_ns(),
            batch: flight.id,
            size: flight.batch.len(),
        });
        for request in &flight.batch {
            let sojourn_ns = at.saturating_since(request.arrival).round_nanos();
            let wait_ns = flight
                .started_at
                .saturating_since(request.arrival)
                .round_nanos();
            let service_ns = sojourn_ns.saturating_sub(wait_ns);
            self.record_completion(request, wait_ns, service_ns);
        }
        flight.batch
    }

    fn record_completion(&mut self, request: &Request, wait_ns: u64, service_ns: u64) {
        self.overall.record(wait_ns, service_ns);
        self.tenant_lat[request.tenant].record(wait_ns, service_ns);
        self.network_lat[request.network].record(wait_ns, service_ns);
        self.tenant_completed[request.tenant] += 1;
        self.network_completed[request.network] += 1;
        self.completed += 1;
        pixel_obs::add("serve.completions", 1);
    }

    /// Closes the run: finishes the window grid at the makespan and
    /// folds every accumulator into a [`ServeReport`] plus the raw
    /// [`FlightData`].
    ///
    /// # Panics
    ///
    /// Panics if a batch is still in flight.
    #[must_use]
    pub fn finish(mut self, meta: &FinishMeta, workload: &Workload) -> (ServeReport, FlightData) {
        assert!(self.server.is_none(), "finish with a batch in flight");
        let makespan = self.last_completion.max(self.clock);
        self.windows.finish(makespan);
        let makespan = makespan.as_secs();
        #[allow(clippy::cast_precision_loss)]
        let achieved_hz = if makespan > 0.0 {
            self.completed as f64 / makespan
        } else {
            0.0
        };
        #[allow(clippy::cast_precision_loss)]
        let mean_batch = if self.dispatches > 0 {
            self.batched_total as f64 / self.dispatches as f64
        } else {
            0.0
        };
        let static_energy = meta.static_power * Time::new(makespan);
        let total_energy = self.dynamic_energy + static_energy;
        #[allow(clippy::cast_precision_loss)]
        let energy_per_inference = if self.completed > 0 {
            total_energy / self.completed as f64
        } else {
            Energy::ZERO
        };
        let tenant_stats = workload
            .tenants()
            .iter()
            .enumerate()
            .map(|(t, tenant)| TenantStats {
                name: tenant.name.clone(),
                completed: self.tenant_completed[t],
                p95: percentiles(&self.tenant_lat[t].sojourn).p95,
                wait: percentiles(&self.tenant_lat[t].wait),
                service: percentiles(&self.tenant_lat[t].service),
            })
            .collect();
        let network_stats = workload
            .networks()
            .iter()
            .enumerate()
            .map(|(n, net)| NetworkStats {
                name: net.name().to_owned(),
                completed: self.network_completed[n],
                wait: percentiles(&self.network_lat[n].wait),
                service: percentiles(&self.network_lat[n].service),
            })
            .collect();
        pixel_obs::gauge(
            "serve.utilization",
            self.busy_time.value() / makespan.max(1e-30),
        );
        let report = ServeReport {
            config: meta.accel,
            policy: self.policy.label(),
            offered_hz: meta.offered_hz,
            achieved_hz,
            arrivals: meta.arrivals,
            completed: self.completed,
            dropped: self.shed,
            latency: percentiles(&self.overall.sojourn),
            queue_wait: percentiles(&self.overall.wait),
            service: percentiles(&self.overall.service),
            mean_batch,
            mean_queue_depth: self.queue.mean_depth(VirtInstant::from_secs(makespan)),
            max_queue_depth: self.queue.max_depth(),
            utilization: self.busy_time.value() / makespan.max(1e-30),
            makespan: Time::new(makespan),
            total_energy,
            energy_per_inference,
            tenants: tenant_stats,
            networks: network_stats,
            windows: self.windows.clone(),
        };
        let data = FlightData {
            recorder: self.recorder,
            overall: self.overall,
            tenants: self.tenant_lat,
            networks: self.network_lat,
        };
        (report, data)
    }
}

/// Summarizes a latency histogram into the report's percentile set.
fn percentiles(histogram: &LatencyHistogram) -> LatencyPercentiles {
    let at = |q: f64| {
        Time::from_nanos({
            #[allow(clippy::cast_precision_loss)]
            {
                histogram.percentile(q) as f64
            }
        })
    };
    LatencyPercentiles {
        p50: at(0.50),
        p95: at(0.95),
        p99: at(0.99),
        p999: at(0.999),
        max: Time::from_nanos({
            #[allow(clippy::cast_precision_loss)]
            {
                histogram.max() as f64
            }
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pixel_core::config::Design;
    use pixel_units::VirtualNs;

    fn config() -> MachineConfig {
        MachineConfig {
            policy: BatchPolicy::Fixed { size: 2 },
            queue_capacity: 4,
            shed: ShedPolicy::DropNewest,
            window_width: Time::new(1.0),
            window_max_bins: 8,
            event_capacity: 64,
            tenants: 3,
            networks: 6,
        }
    }

    fn req(id: u64, network: usize, arrival: f64) -> Request {
        Request {
            id,
            tenant: 0,
            network,
            arrival: VirtInstant::from_secs(arrival),
        }
    }

    fn meta() -> FinishMeta {
        FinishMeta {
            accel: AcceleratorConfig::new(Design::Oo, 4, 16),
            offered_hz: 1.0,
            static_power: Power::ZERO,
            arrivals: 2,
        }
    }

    #[test]
    fn planned_and_measured_paths_agree_on_the_breakdown() {
        let workload = Workload::paper_mix();
        let cost = |_net: usize, batch: usize| {
            #[allow(clippy::cast_precision_loss)]
            (Time::new(0.5 * batch as f64), Energy::new(1.0))
        };
        let run = |open: bool| {
            let mut m = ServeMachine::new(&config());
            assert_eq!(m.admit(req(0, 1, 0.25)), Admission::Admitted);
            assert_eq!(m.admit(req(1, 1, 0.75)), Admission::Admitted);
            assert!(matches!(m.decide(), Decision::Dispatch));
            if open {
                let d = m.dispatch_open();
                assert_eq!((d.network, d.size, d.batch), (1, 2, 0));
                let (latency, energy) = cost(d.network, d.size);
                let done = m.now() + latency;
                let batch = m.complete_measured(done, energy);
                assert_eq!(batch.len(), 2);
            } else {
                m.dispatch(cost);
                assert_eq!(m.planned_completion(), Some(VirtInstant::from_secs(1.75)));
                m.complete();
            }
            m.finish(&meta(), &workload)
        };
        let (planned, planned_data) = run(false);
        let (measured, measured_data) = run(true);
        // Identical instants fed through either path yield the same
        // decisions, counts, and latency decomposition.
        assert_eq!(planned, measured);
        assert_eq!(planned_data.overall, measured_data.overall);
        assert_eq!(planned.completed, 2);
        assert!((planned.utilization * planned.makespan.value() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn admit_reports_the_shed_choice() {
        let mut newest = ServeMachine::new(&MachineConfig {
            queue_capacity: 1,
            ..config()
        });
        assert_eq!(newest.admit(req(0, 0, 0.0)), Admission::Admitted);
        assert_eq!(newest.admit(req(1, 0, 0.1)), Admission::ShedArrival);

        let mut oldest = ServeMachine::new(&MachineConfig {
            queue_capacity: 1,
            shed: ShedPolicy::DropOldest,
            ..config()
        });
        assert_eq!(oldest.admit(req(0, 0, 0.0)), Admission::Admitted);
        match oldest.admit(req(1, 0, 0.1)) {
            Admission::ShedOldest { victim } => assert_eq!(victim.id, 0),
            other => panic!("expected eviction, got {other:?}"),
        }
    }

    #[test]
    fn clock_never_regresses() {
        let mut m = ServeMachine::new(&config());
        m.advance_to(VirtInstant::from_secs(2.0));
        m.advance_to(VirtInstant::from_secs(1.0));
        assert_eq!(m.now(), VirtInstant::from_secs(2.0));
        // Late-stamped arrivals do not rewind the machine either.
        let _ = m.admit(req(0, 0, 0.5));
        assert_eq!(m.now(), VirtInstant::from_secs(2.0));
        // ... but the event stream still stamps at the machine's now.
        let last = *m.recorder.events().back().unwrap();
        assert_eq!(last.t_ns(), VirtualNs::from_nanos(2_000_000_000));
    }
}
