//! The clock abstraction separating serving *policy* from serving
//! *time*.
//!
//! Policy code ([`crate::machine::ServeMachine`], the batching and
//! admission logic under it) never reads time: it is fed
//! [`VirtInstant`]s by a driver. Drivers get those instants from a
//! [`Clock`]:
//!
//! * [`VirtualClock`] — a settable clock for tests and replay: time
//!   moves only when the owner moves it, and `sleep` advances it
//!   instantly.
//! * [`MonotonicClock`] — the daemon's clock: instants are seconds of
//!   [`std::time::Instant`] elapsed since the clock's construction
//!   (its epoch), so a run's instants are small, monotone, and share
//!   the machine's `t = 0` origin with the simulator.
//!
//! This is the **only** file in `crates/serve` permitted to touch
//! `std::time` clocks — the workspace lint's D001 rule pins that
//! boundary, and `ci.sh` carries a negative smoke test proving an
//! unvetted wall-clock read anywhere else in serve policy code is
//! rejected.

use pixel_units::{Time, VirtInstant};
use std::sync::atomic::{AtomicU64, Ordering};

/// A source of instants and a way to wait: everything a serving driver
/// needs from time.
pub trait Clock {
    /// The current instant on this clock's timeline.
    fn now(&self) -> VirtInstant;

    /// Blocks (or virtually advances) for `duration`.
    fn sleep(&self, duration: Time);
}

/// A test/replay clock: time is a settable atomic, and sleeping jumps
/// it forward deterministically.
#[derive(Debug, Default)]
pub struct VirtualClock {
    /// Bit pattern of the current f64 seconds-since-epoch.
    bits: AtomicU64,
}

impl VirtualClock {
    /// A virtual clock at its epoch.
    #[must_use]
    pub fn new() -> Self {
        Self {
            bits: AtomicU64::new(0.0f64.to_bits()),
        }
    }

    /// Moves the clock to `now` if that is later (never regresses).
    pub fn set(&self, now: VirtInstant) {
        let mut current = self.bits.load(Ordering::Acquire);
        while f64::from_bits(current) < now.as_secs() {
            match self.bits.compare_exchange_weak(
                current,
                now.as_secs().to_bits(),
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => break,
                Err(actual) => current = actual,
            }
        }
    }
}

impl Clock for VirtualClock {
    fn now(&self) -> VirtInstant {
        VirtInstant::from_secs(f64::from_bits(self.bits.load(Ordering::Acquire)))
    }

    fn sleep(&self, duration: Time) {
        let target = self.now() + duration.max(Time::ZERO);
        self.set(target);
    }
}

/// The daemon's clock: monotonic wall time as seconds since this
/// clock's construction.
#[derive(Debug, Clone, Copy)]
pub struct MonotonicClock {
    epoch: std::time::Instant,
}

impl MonotonicClock {
    /// A monotonic clock whose epoch (`t = 0`) is now.
    #[must_use]
    pub fn start() -> Self {
        Self {
            epoch: std::time::Instant::now(),
        }
    }
}

impl Default for MonotonicClock {
    fn default() -> Self {
        Self::start()
    }
}

impl Clock for MonotonicClock {
    fn now(&self) -> VirtInstant {
        VirtInstant::from_secs(self.epoch.elapsed().as_secs_f64())
    }

    fn sleep(&self, duration: Time) {
        if duration > Time::ZERO {
            std::thread::sleep(std::time::Duration::from_secs_f64(duration.value()));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn virtual_clock_moves_only_forward() {
        let clock = VirtualClock::new();
        assert_eq!(clock.now(), VirtInstant::EPOCH);
        clock.set(VirtInstant::from_secs(2.0));
        clock.set(VirtInstant::from_secs(1.0));
        assert_eq!(clock.now(), VirtInstant::from_secs(2.0));
        clock.sleep(Time::new(0.5));
        assert_eq!(clock.now(), VirtInstant::from_secs(2.5));
        clock.sleep(Time::new(-1.0));
        assert_eq!(
            clock.now(),
            VirtInstant::from_secs(2.5),
            "negative sleep is a no-op"
        );
    }

    #[test]
    fn monotonic_clock_starts_near_epoch_and_advances() {
        let clock = MonotonicClock::start();
        let a = clock.now();
        assert!(a.as_secs() >= 0.0 && a.as_secs() < 1.0, "fresh epoch");
        clock.sleep(Time::new(0.002));
        let b = clock.now();
        assert!(b > a, "monotonic: {b} after {a}");
    }
}
