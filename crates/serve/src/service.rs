//! The per-network service-cost model shared by the simulator and the
//! daemon's analytic mode.
//!
//! [`ServiceModel`] evaluates every network in a workload once against
//! an accelerator configuration (through [`EvalContext`], so design
//! overrides apply) and answers batch-cost queries from the cached
//! reports: service time comes from the pipeline-fill batching model in
//! `pixel_core::throughput`, dynamic energy scales linearly with batch
//! size. The simulator charges these costs on its virtual clock; the
//! daemon's analytic mode *sleeps* them (scaled) on the monotonic
//! clock, which is what makes the simulator a quantitative oracle for
//! the live process.

use crate::arrivals::Workload;
use pixel_core::config::AcceleratorConfig;
use pixel_core::model::EvalContext;
use pixel_core::throughput;
use pixel_units::{Energy, Power, Time};

/// Per-network service quantities, evaluated once per run.
pub struct ServiceModel {
    reports: Vec<pixel_core::accelerator::NetworkReport>,
    static_power: Power,
}

impl ServiceModel {
    /// Evaluates `workload`'s networks on `accel` and caches the
    /// reports.
    #[must_use]
    pub fn new(ctx: &EvalContext, workload: &Workload, accel: &AcceleratorConfig) -> Self {
        let reports = workload
            .networks()
            .iter()
            .map(|net| ctx.evaluate(accel, net))
            .collect();
        let static_power = accel.design.model().static_power(accel);
        Self {
            reports,
            static_power: static_power.laser_wall_plug + static_power.thermal_tuning,
        }
    }

    /// Service time and dynamic energy of a `batch`-sized dispatch of
    /// network `network`.
    #[must_use]
    pub fn batch(&self, network: usize, batch: usize) -> (Time, Energy) {
        let report = &self.reports[network];
        let latency = throughput::batch_latency(report, batch);
        #[allow(clippy::cast_precision_loss)]
        let energy = report.total_energy() * batch as f64;
        (latency, energy)
    }

    /// Always-on wall-plug power (laser + thermal tuning) charged over
    /// the whole makespan.
    #[must_use]
    pub fn static_power(&self) -> Power {
        self.static_power
    }
}
