//! # pixel-serve — discrete-event inference serving on PIXEL fabrics
//!
//! The analytical layers below ([`pixel_core`]) answer *how fast is one
//! inference, one batch, one design point*. This crate answers the
//! operational question an accelerator deployment actually faces: **at
//! what offered load does a design stop keeping up, and what do tail
//! latencies look like on the way there?**
//!
//! It is a small, std-only discrete-event simulator of a single-fabric
//! serving system:
//!
//! * [`arrivals`] — deterministic Poisson arrivals (seeded
//!   [`pixel_units::rng::SplitMix64`], unit-rate exponential gaps scaled
//!   by `1/rate` so the request *sequence* is rate-independent), drawn
//!   from a multi-tenant [`arrivals::Workload`] mixing the six paper
//!   CNNs.
//! * [`queue`] — a bounded FIFO admission queue with configurable load
//!   shedding and time-weighted depth accounting.
//! * [`batching`] — pluggable batch formation: fixed-size, or dynamic
//!   (dispatch when full *or* when the head-of-line request ages past a
//!   deadline; zero deadline is greedy natural batching).
//! * [`machine`] — the pure serving state machine: all of the above
//!   policies plus flight-recorder/window/latency accounting over *fed*
//!   [`pixel_units::VirtInstant`]s, never reading a clock.
//! * [`sim`] — the discrete-event driver. Feeds the machine virtual
//!   instants; service times and energy come straight from the memoized
//!   [`pixel_core::model::EvalContext`] via the pipeline-fill batch
//!   model in [`pixel_core::throughput`] (see [`service`]); no cost
//!   formula is duplicated here.
//! * [`clock`] — the [`clock::Clock`] abstraction the live drivers
//!   stand on: a virtual test clock and the daemon's monotonic clock.
//! * [`daemon`] / [`wire`] / [`loadgen`] — the `pixel-served` daemon:
//!   the same machine driven by a monotonic clock behind a
//!   length-prefixed JSONL loopback socket, plus its deterministic
//!   closed-loop load generator.
//! * [`oracle`] — runs the live daemon and the simulator over the same
//!   seeds and checks the daemon's saturation knee and wait/service
//!   split against the simulator's prediction.
//! * [`percentile`] — an integer-only log-linear latency histogram
//!   (HDR-style) whose percentiles are bitwise deterministic across
//!   platforms and worker counts, with exact bucket-wise
//!   [`LatencyHistogram::merge`].
//! * [`flightrec`] — typed, virtual-time-stamped request-lifecycle
//!   events in a bounded ring (the flight recorder), plus the
//!   queue-wait vs service-time latency decomposition per tenant and
//!   per network.
//! * [`window`] — windowed time-series metrics (throughput, queue
//!   occupancy, shed rate, batch sizes, integrated power) on a
//!   self-coarsening virtual-time grid.
//! * [`saturation`] — sweeps offered load × design through
//!   [`pixel_core::sweep::SweepEngine`] and locates each design's
//!   saturation knee; [`saturation::metrics_jsonl`] exports the sweep
//!   as schema-tagged JSONL.
//!
//! Everything is deterministic: one `u64` seed fixes the entire run, and
//! the artifact output is bitwise identical at any `--jobs` level.

pub mod arrivals;
pub mod batching;
pub mod clock;
pub mod daemon;
pub mod flightrec;
pub mod loadgen;
pub mod machine;
pub mod oracle;
pub mod percentile;
pub mod queue;
pub mod report;
pub mod saturation;
pub mod service;
pub mod sim;
pub mod window;
pub mod wire;

pub use arrivals::{Request, RequestSource, Tenant, Workload};
pub use batching::{BatchPolicy, Decision};
pub use clock::{Clock, MonotonicClock, VirtualClock};
pub use flightrec::{FlightData, FlightRecorder, LatencyBreakdown, ServeEvent};
pub use machine::{Admission, FinishMeta, MachineConfig, OpenDispatch, ServeMachine};
pub use percentile::LatencyHistogram;
pub use queue::{AdmissionQueue, ShedPolicy};
pub use report::{LatencyPercentiles, NetworkStats, ServeReport, TenantStats};
pub use saturation::{metrics_jsonl, saturation_sweep, DesignCurve, SweepSpec};
pub use service::ServiceModel;
pub use sim::{simulate, simulate_with_flightrec, ServeConfig};
pub use window::{WindowBin, WindowSeries};
