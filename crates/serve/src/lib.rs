//! # pixel-serve — discrete-event inference serving on PIXEL fabrics
//!
//! The analytical layers below ([`pixel_core`]) answer *how fast is one
//! inference, one batch, one design point*. This crate answers the
//! operational question an accelerator deployment actually faces: **at
//! what offered load does a design stop keeping up, and what do tail
//! latencies look like on the way there?**
//!
//! It is a small, std-only discrete-event simulator of a single-fabric
//! serving system:
//!
//! * [`arrivals`] — deterministic Poisson arrivals (seeded
//!   [`pixel_units::rng::SplitMix64`], unit-rate exponential gaps scaled
//!   by `1/rate` so the request *sequence* is rate-independent), drawn
//!   from a multi-tenant [`arrivals::Workload`] mixing the six paper
//!   CNNs.
//! * [`queue`] — a bounded FIFO admission queue with configurable load
//!   shedding and time-weighted depth accounting.
//! * [`batching`] — pluggable batch formation: fixed-size, or dynamic
//!   (dispatch when full *or* when the head-of-line request ages past a
//!   deadline; zero deadline is greedy natural batching).
//! * [`sim`] — the event loop. Service times and energy come straight
//!   from the memoized [`pixel_core::model::EvalContext`] via the
//!   pipeline-fill batch model in [`pixel_core::throughput`]; no cost
//!   formula is duplicated here.
//! * [`percentile`] — an integer-only log-linear latency histogram
//!   (HDR-style) whose percentiles are bitwise deterministic across
//!   platforms and worker counts, with exact bucket-wise
//!   [`LatencyHistogram::merge`].
//! * [`flightrec`] — typed, virtual-time-stamped request-lifecycle
//!   events in a bounded ring (the flight recorder), plus the
//!   queue-wait vs service-time latency decomposition per tenant and
//!   per network.
//! * [`window`] — windowed time-series metrics (throughput, queue
//!   occupancy, shed rate, batch sizes, integrated power) on a
//!   self-coarsening virtual-time grid.
//! * [`saturation`] — sweeps offered load × design through
//!   [`pixel_core::sweep::SweepEngine`] and locates each design's
//!   saturation knee; [`saturation::metrics_jsonl`] exports the sweep
//!   as schema-tagged JSONL.
//!
//! Everything is deterministic: one `u64` seed fixes the entire run, and
//! the artifact output is bitwise identical at any `--jobs` level.

pub mod arrivals;
pub mod batching;
pub mod flightrec;
pub mod percentile;
pub mod queue;
pub mod report;
pub mod saturation;
pub mod sim;
pub mod window;

pub use arrivals::{Request, RequestSource, Tenant, Workload};
pub use batching::BatchPolicy;
pub use flightrec::{FlightData, FlightRecorder, LatencyBreakdown, ServeEvent};
pub use percentile::LatencyHistogram;
pub use queue::{AdmissionQueue, ShedPolicy};
pub use report::{LatencyPercentiles, NetworkStats, ServeReport, TenantStats};
pub use saturation::{metrics_jsonl, saturation_sweep, DesignCurve, SweepSpec};
pub use sim::{simulate, simulate_with_flightrec, ServeConfig};
pub use window::{WindowBin, WindowSeries};
