//! `pixel-served`: the live serving daemon.
//!
//! The daemon drives the *same* [`ServeMachine`] the discrete-event
//! simulator drives — identical admission, shedding, batching, window,
//! and flight-recorder code — but feeds it instants from a
//! [`MonotonicClock`] instead of virtual event times, and services
//! dispatched batches for real:
//!
//! * **analytic** mode asks the [`ServiceModel`] for the batch's
//!   modeled service time and *sleeps* it (scaled by
//!   [`DaemonConfig::time_scale`], so oracle runs compress hours of
//!   modeled serving into seconds of wall time);
//! * **functional** mode pushes a bit-true convolution through the
//!   photonic [`FunctionalFabric`] per request, so the serving path
//!   demonstrably carries real optical-transport compute.
//!
//! Transport is the length-prefixed flat-JSON protocol of [`crate::wire`]
//! on a loopback TCP socket. Each connection gets a reader thread that
//! stamps arrivals with the monotonic clock **at socket-read time** (so
//! queue-wait measurements include time spent waiting for the engine),
//! then forwards them to the single engine thread that owns the
//! machine. A `drain` control frame ends intake: the engine flushes the
//! queue, answers every live connection with a `pixel.serve.stats`
//! frame (so multi-connection load generators can close each reader
//! deterministically), and returns the same `(ServeReport, FlightData)`
//! pair the simulator produces — which is what the oracle compares.

use crate::arrivals::{Request, Workload};
use crate::batching::Decision;
use crate::clock::{Clock, MonotonicClock};
use crate::flightrec::FlightData;
use crate::machine::{Admission, FinishMeta, ServeMachine};
use crate::report::ServeReport;
use crate::service::ServiceModel;
use crate::sim::ServeConfig;
use crate::wire::{self, ClientFrame, WireRequest, WireResponse};
use pixel_core::functional_fabric::FunctionalFabric;
use pixel_core::model::EvalContext;
use pixel_dnn::inference::LayerWeights;
use pixel_dnn::layer::{Layer, Shape};
use pixel_dnn::tensor::Tensor;
use pixel_units::rng::SplitMix64;
use pixel_units::{Time, VirtInstant};
use std::collections::BTreeMap;
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::Duration;

/// How a dispatched batch is actually serviced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServiceMode {
    /// Sleep the modeled batch latency (× `time_scale`).
    Analytic,
    /// Run a bit-true convolution through the photonic fabric per
    /// request; the measured span is real compute time.
    Functional,
}

/// Parameters of one daemon run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DaemonConfig {
    /// The serving setup (accelerator, policy, queue, expected rate —
    /// the rate sizes the window grid and is reported as offered load).
    pub serve: ServeConfig,
    /// Analytic mode sleeps `modeled latency × time_scale`: values < 1
    /// compress modeled time so oracle runs finish quickly.
    pub time_scale: f64,
    /// Batch service backend.
    pub mode: ServiceMode,
    /// Flight-recorder ring depth.
    pub event_capacity: usize,
}

/// Engine mailbox traffic from the per-connection reader threads.
enum EngineMsg {
    Arrive {
        wire: WireRequest,
        arrival: VirtInstant,
        conn: usize,
    },
    Drain,
}

/// Shared per-connection writer handles, keyed by connection id.
type Writers = Arc<Mutex<BTreeMap<usize, TcpStream>>>;

/// The bit-true workload functional mode runs per request: a small
/// 8×8×4 convolution (64 MACs/window × 36 windows) — big enough to
/// exercise serialize → mux → demux → detect, small enough to serve
/// interactively.
fn functional_case(fabric_seed: u64) -> (Layer, Tensor, LayerWeights) {
    let mut rng = SplitMix64::seed_from_u64(fabric_seed);
    let layer = Layer::conv("ServeConv", Shape::square(8, 4), 4, 3, 1);
    let input = Tensor::from_fn(Shape::square(8, 4), |_, _, _| rng.range_u64(0, 15));
    let weights = LayerWeights::generate(&layer, || rng.range_u64(0, 15));
    (layer, input, weights)
}

/// Runs the daemon on an already-bound listener until a client sends
/// `drain` and the queue flushes, then returns the run's report and
/// flight data (the daemon-side halves of the oracle contract).
///
/// # Errors
///
/// Propagates listener configuration errors; per-connection I/O errors
/// are contained (a dead client's responses are dropped).
///
/// # Panics
///
/// Panics if interior locks are poisoned (a panicked reader thread).
pub fn run(
    listener: TcpListener,
    workload: &Workload,
    ctx: &EvalContext,
    config: &DaemonConfig,
) -> std::io::Result<(ServeReport, FlightData)> {
    let _span = pixel_obs::span("serve/daemon");
    let clock = MonotonicClock::start();
    let model = ServiceModel::new(ctx, workload, &config.serve.accel);
    let fabric = match config.mode {
        ServiceMode::Functional => Some(FunctionalFabric::new(config.serve.accel)),
        ServiceMode::Analytic => None,
    };
    let functional = functional_case(config.serve.seed);
    let mut machine =
        ServeMachine::new(&config.serve.machine_config(workload, config.event_capacity));

    let (tx, rx) = mpsc::channel::<EngineMsg>();
    let stop = Arc::new(AtomicBool::new(false));
    let writers: Writers = Arc::new(Mutex::new(BTreeMap::new()));
    listener.set_nonblocking(true)?;
    let acceptor = {
        let stop = Arc::clone(&stop);
        let writers = Arc::clone(&writers);
        let tx = tx.clone();
        std::thread::spawn(move || accept_loop(&listener, &stop, &writers, &tx, clock))
    };
    drop(tx);

    let tenants = workload.tenants().len();
    let networks = workload.networks().len();
    let mut pending: BTreeMap<u64, (usize, u64)> = BTreeMap::new();
    let mut arrival_seq: u64 = 0;
    let mut draining = false;

    let mut handle = |msg: EngineMsg,
                      machine: &mut ServeMachine,
                      pending: &mut BTreeMap<u64, (usize, u64)>,
                      draining: &mut bool| {
        match msg {
            EngineMsg::Arrive {
                wire,
                arrival,
                conn,
            } => {
                if wire.tenant >= tenants || wire.network >= networks {
                    pixel_obs::add("serve.daemon.malformed", 1);
                    return;
                }
                let request = Request {
                    id: arrival_seq,
                    tenant: wire.tenant,
                    network: wire.network,
                    arrival,
                };
                arrival_seq += 1;
                match machine.admit(request) {
                    Admission::Admitted => {
                        pending.insert(request.id, (conn, wire.id));
                    }
                    Admission::ShedArrival => {
                        respond(
                            &writers,
                            conn,
                            &WireResponse {
                                id: wire.id,
                                batch: 0,
                                served: false,
                                wait_ns: 0,
                                service_ns: 0,
                            },
                        );
                    }
                    Admission::ShedOldest { victim } => {
                        pending.insert(request.id, (conn, wire.id));
                        if let Some((victim_conn, victim_id)) = pending.remove(&victim.id) {
                            respond(
                                &writers,
                                victim_conn,
                                &WireResponse {
                                    id: victim_id,
                                    batch: 0,
                                    served: false,
                                    wait_ns: 0,
                                    service_ns: 0,
                                },
                            );
                        }
                    }
                }
            }
            EngineMsg::Drain => *draining = true,
        }
    };

    let service_batch = |machine: &mut ServeMachine, pending: &mut BTreeMap<u64, (usize, u64)>| {
        let started = machine.now();
        let dispatch = machine.dispatch_open();
        let (latency, energy) = model.batch(dispatch.network, dispatch.size);
        match (config.mode, &fabric) {
            (ServiceMode::Analytic, _) | (ServiceMode::Functional, None) => {
                clock.sleep(latency * config.time_scale);
            }
            (ServiceMode::Functional, Some(fabric)) => {
                let (layer, input, weights) = &functional;
                for _ in 0..dispatch.size {
                    // lint:allow(P002) the case is shape-checked by construction
                    let _ = fabric.conv2d(layer, input, weights).expect("serve conv");
                }
            }
        }
        let done = clock.now();
        let batch = machine.complete_measured(done, energy);
        let wait_base = started;
        for request in &batch {
            if let Some((conn, client_id)) = pending.remove(&request.id) {
                respond(
                    &writers,
                    conn,
                    &WireResponse {
                        id: client_id,
                        batch: dispatch.batch,
                        served: true,
                        wait_ns: wait_base.saturating_since(request.arrival).round_nanos(),
                        service_ns: done.saturating_since(wait_base).round_nanos(),
                    },
                );
            }
        }
    };

    loop {
        // Pump everything already in the mailbox before deciding.
        loop {
            match rx.try_recv() {
                Ok(msg) => handle(msg, &mut machine, &mut pending, &mut draining),
                Err(mpsc::TryRecvError::Empty) => break,
                Err(mpsc::TryRecvError::Disconnected) => {
                    draining = true;
                    break;
                }
            }
        }
        machine.advance_to(clock.now());
        match machine.decide() {
            Decision::Dispatch => service_batch(&mut machine, &mut pending),
            Decision::HoldUntil(expiry) => {
                let wait = expiry.saturating_since(clock.now());
                if wait <= Time::ZERO {
                    machine.advance_to(expiry.max(clock.now()));
                    service_batch(&mut machine, &mut pending);
                } else {
                    match rx.recv_timeout(Duration::from_secs_f64(wait.value())) {
                        Ok(msg) => {
                            handle(msg, &mut machine, &mut pending, &mut draining);
                        }
                        Err(mpsc::RecvTimeoutError::Timeout) => {
                            machine.advance_to(clock.now());
                            service_batch(&mut machine, &mut pending);
                        }
                        Err(mpsc::RecvTimeoutError::Disconnected) => draining = true,
                    }
                }
            }
            Decision::Hold => {
                if machine.queue_is_empty() {
                    if draining {
                        break;
                    }
                    match rx.recv_timeout(Duration::from_millis(20)) {
                        Ok(msg) => {
                            handle(msg, &mut machine, &mut pending, &mut draining);
                        }
                        Err(mpsc::RecvTimeoutError::Timeout) => {}
                        Err(mpsc::RecvTimeoutError::Disconnected) => draining = true,
                    }
                } else if draining {
                    // Intake over: flush remaining (possibly partial)
                    // batches so every admitted request completes.
                    service_batch(&mut machine, &mut pending);
                } else {
                    match rx.recv_timeout(Duration::from_millis(20)) {
                        Ok(msg) => {
                            handle(msg, &mut machine, &mut pending, &mut draining);
                        }
                        Err(mpsc::RecvTimeoutError::Timeout) => {}
                        Err(mpsc::RecvTimeoutError::Disconnected) => draining = true,
                    }
                }
            }
        }
    }

    let (report, data) = machine.finish(
        &FinishMeta {
            accel: config.serve.accel,
            offered_hz: config.serve.rate_hz,
            static_power: model.static_power(),
            arrivals: arrival_seq,
        },
        workload,
    );
    // Answer *every* live connection with the final stats frame: the
    // per-connection byte stream puts it after that connection's last
    // response, so a multi-connection load generator can close each
    // reader deterministically without racing an EOF.
    let conns: Vec<usize> = {
        // lint:allow(P002) a poisoned registry means a reader already panicked
        let registry = writers.lock().expect("writer registry");
        registry.keys().copied().collect()
    };
    for conn in conns {
        respond_raw(&writers, conn, &stats_json(&report));
    }
    stop.store(true, Ordering::Release);
    let _ = acceptor.join();
    Ok((report, data))
}

/// Polls for connections until `stop`: each accepted stream is
/// registered in `writers` and gets a reader thread stamping arrivals
/// with `clock` at socket-read time.
fn accept_loop(
    listener: &TcpListener,
    stop: &AtomicBool,
    writers: &Writers,
    tx: &mpsc::Sender<EngineMsg>,
    clock: MonotonicClock,
) {
    let mut next_conn: usize = 0;
    while !stop.load(Ordering::Acquire) {
        match listener.accept() {
            Ok((stream, _addr)) => {
                pixel_obs::add("serve.daemon.connections", 1);
                let conn = next_conn;
                next_conn += 1;
                if let Ok(writer) = stream.try_clone() {
                    // lint:allow(P002) a poisoned registry means a reader already panicked
                    let mut registry = writers.lock().expect("writer registry");
                    registry.insert(conn, writer);
                }
                let tx = tx.clone();
                std::thread::spawn(move || reader_loop(stream, conn, &tx, clock));
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(_) => break,
        }
    }
}

/// Reads frames off one connection until EOF or a parse-fatal error,
/// forwarding requests (stamped at read time) and drain controls to the
/// engine.
fn reader_loop(
    mut stream: TcpStream,
    conn: usize,
    tx: &mpsc::Sender<EngineMsg>,
    clock: MonotonicClock,
) {
    while let Ok(Some(body)) = wire::read_frame(&mut stream) {
        pixel_obs::add("serve.daemon.frames", 1);
        let arrival = clock.now();
        match wire::parse_client_frame(&body) {
            Some(ClientFrame::Request(wire)) => {
                if tx
                    .send(EngineMsg::Arrive {
                        wire,
                        arrival,
                        conn,
                    })
                    .is_err()
                {
                    break;
                }
            }
            Some(ClientFrame::Drain) => {
                let _ = tx.send(EngineMsg::Drain);
            }
            None => pixel_obs::add("serve.daemon.malformed", 1),
        }
    }
}

/// Writes one response frame to a connection, dropping it silently if
/// the client is gone.
fn respond(writers: &Writers, conn: usize, response: &WireResponse) {
    respond_raw(writers, conn, &response.to_json());
}

fn respond_raw(writers: &Writers, conn: usize, body: &str) {
    // lint:allow(P002) a poisoned registry means a reader already panicked
    let mut writers = writers.lock().expect("writer registry");
    if let Some(stream) = writers.get_mut(&conn) {
        if wire::write_frame(stream, body).is_err() {
            writers.remove(&conn);
        }
    }
}

/// The end-of-run summary frame the draining client receives (also
/// the first line of [`live_metrics_jsonl`]).
#[must_use]
pub fn stats_json(report: &ServeReport) -> String {
    format!(
        "{{\"schema\":\"pixel.serve.stats\",\"arrivals\":{},\"completed\":{},\"dropped\":{},\"makespan_ns\":{},\"wait_p50_ns\":{},\"service_p50_ns\":{},\"sojourn_p50_ns\":{},\"mean_batch\":{}}}",
        report.arrivals,
        report.completed,
        report.dropped,
        report.makespan.round_nanos(),
        report.queue_wait.p50.round_nanos(),
        report.service.p50.round_nanos(),
        report.latency.p50.round_nanos(),
        report.mean_batch
    )
}

/// The live run as schema-tagged JSONL the `checkjsonl` tool (and any
/// `pixel-obs` consumer) validates: one `pixel.serve.stats` line plus
/// the windowed series tagged `"mode":"live"`.
#[must_use]
pub fn live_metrics_jsonl(report: &ServeReport) -> String {
    let mut s = stats_json(report);
    s.push('\n');
    s.push_str(&report.windows.to_jsonl("\"mode\":\"live\","));
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batching::BatchPolicy;
    use crate::queue::ShedPolicy;
    use pixel_core::config::{AcceleratorConfig, Design};

    fn daemon_config() -> DaemonConfig {
        let mut serve = ServeConfig::new(AcceleratorConfig::new(Design::Oo, 4, 16), 50.0, 16, 7);
        serve.policy = BatchPolicy::Dynamic {
            max_size: 4,
            deadline: Time::ZERO,
        };
        serve.queue_capacity = 64;
        serve.shed = ShedPolicy::DropNewest;
        DaemonConfig {
            serve,
            time_scale: 1e-3,
            mode: ServiceMode::Analytic,
            event_capacity: 256,
        }
    }

    #[test]
    fn daemon_serves_a_burst_and_reports_it() {
        let workload = Workload::paper_mix();
        let ctx = EvalContext::new();
        let config = daemon_config();
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        std::thread::scope(|scope| {
            let daemon = scope.spawn(|| run(listener, &workload, &ctx, &config).unwrap());
            let mut stream = TcpStream::connect(addr).unwrap();
            for id in 0..8u64 {
                let request = WireRequest {
                    id,
                    tenant: (id % 3) as usize,
                    network: (id % 6) as usize,
                };
                wire::write_frame(&mut stream, &request.to_json()).unwrap();
            }
            wire::write_frame(&mut stream, &wire::drain_frame()).unwrap();
            let mut served = 0u64;
            let mut stats_seen = false;
            while let Some(body) = wire::read_frame(&mut stream).unwrap() {
                if let Some(response) = wire::parse_response(&body) {
                    assert!(response.served, "nothing sheds at depth 64");
                    served += 1;
                } else {
                    let fields = pixel_obs::parse_flat_object(&body).unwrap();
                    assert_eq!(
                        fields
                            .iter()
                            .find(|(k, _)| k == "schema")
                            .map(|(_, v)| v.as_str()),
                        Some("pixel.serve.stats")
                    );
                    stats_seen = true;
                    break;
                }
            }
            assert_eq!(served, 8);
            assert!(stats_seen, "drain answers with a stats frame");
            let (report, data) = daemon.join().unwrap();
            assert_eq!(report.arrivals, 8);
            assert_eq!(report.completed, 8);
            assert_eq!(report.dropped, 0);
            assert_eq!(data.overall.count(), 8);
            assert!(report.makespan.value() > 0.0);
        });
    }

    #[test]
    fn functional_mode_runs_bit_true_batches() {
        let workload = Workload::paper_mix();
        let ctx = EvalContext::new();
        let mut config = daemon_config();
        config.mode = ServiceMode::Functional;
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        std::thread::scope(|scope| {
            let daemon = scope.spawn(|| run(listener, &workload, &ctx, &config).unwrap());
            let mut stream = TcpStream::connect(addr).unwrap();
            for id in 0..2u64 {
                let request = WireRequest {
                    id,
                    tenant: 0,
                    network: 0,
                };
                wire::write_frame(&mut stream, &request.to_json()).unwrap();
            }
            wire::write_frame(&mut stream, &wire::drain_frame()).unwrap();
            let mut served = 0;
            while let Some(body) = wire::read_frame(&mut stream).unwrap() {
                if let Some(response) = wire::parse_response(&body) {
                    assert!(response.service_ns > 0, "real compute takes real time");
                    served += 1;
                } else {
                    break;
                }
            }
            assert_eq!(served, 2);
            let (report, _) = daemon.join().unwrap();
            assert_eq!(report.completed, 2);
        });
    }
}
