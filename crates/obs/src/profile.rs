//! Plain-text profile tables rendered from a [`Snapshot`].
//!
//! The format mirrors the repo's other report tables (`pixel-core`'s
//! `report` module): fixed-width columns, one header row, deterministic
//! row order. The exact layout is pinned by a snapshot test.

use crate::registry::Snapshot;
use std::fmt::Write as _;
use std::time::Duration;

fn format_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        #[allow(clippy::cast_precision_loss)]
        {
            format!("{:.2} us", ns as f64 / 1_000.0)
        }
    } else if ns < 1_000_000_000 {
        #[allow(clippy::cast_precision_loss)]
        {
            format!("{:.2} ms", ns as f64 / 1_000_000.0)
        }
    } else {
        format!("{:.3} s", d.as_secs_f64())
    }
}

/// Renders the snapshot as a profile table: spans first (as an indented
/// call tree with self-vs-total time), then counters, gauges, and
/// histograms. Sections with no data are omitted; an entirely empty
/// snapshot renders a stub line.
#[must_use]
pub fn profile_table(snapshot: &Snapshot) -> String {
    let mut out = String::new();
    if !snapshot.spans.is_empty() {
        out.push_str(&crate::tree::render_span_tree(snapshot, format_duration));
    }
    if !snapshot.counters.is_empty() {
        if !out.is_empty() {
            out.push('\n');
        }
        let _ = writeln!(out, "{:<40} | {:>16}", "counter", "value");
        for (name, value) in &snapshot.counters {
            let _ = writeln!(out, "{name:<40} | {value:>16}");
        }
    }
    if !snapshot.gauges.is_empty() {
        if !out.is_empty() {
            out.push('\n');
        }
        let _ = writeln!(out, "{:<40} | {:>16}", "gauge", "value");
        for (name, value) in &snapshot.gauges {
            let _ = writeln!(out, "{name:<40} | {value:>16.4}");
        }
    }
    if !snapshot.histograms.is_empty() {
        if !out.is_empty() {
            out.push('\n');
        }
        let _ = writeln!(
            out,
            "{:<40} | {:>8} {:>12} {:>12} {:>12}",
            "histogram", "count", "mean", "min", "max"
        );
        for (name, h) in &snapshot.histograms {
            let _ = writeln!(
                out,
                "{name:<40} | {:>8} {:>12.3} {:>12.3} {:>12.3}",
                h.count,
                h.mean(),
                h.min,
                h.max
            );
        }
    }
    if out.is_empty() {
        out.push_str("(no observability data recorded)\n");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Registry;

    #[test]
    fn empty_snapshot_renders_stub() {
        let r = Registry::new();
        assert_eq!(
            profile_table(&r.snapshot()),
            "(no observability data recorded)\n"
        );
    }

    #[test]
    fn sections_render_in_fixed_order() {
        let r = Registry::new();
        r.enable();
        r.record_span("a/b", Duration::from_micros(1500));
        r.add("ops", 42);
        r.gauge("util", 0.5);
        r.observe("lat", 2.0);
        let table = profile_table(&r.snapshot());
        let span_at = table.find("span").unwrap();
        let counter_at = table.find("counter").unwrap();
        let gauge_at = table.find("gauge").unwrap();
        let hist_at = table.find("histogram").unwrap();
        assert!(span_at < counter_at && counter_at < gauge_at && gauge_at < hist_at);
        assert!(table.contains("1.50 ms"));
    }

    #[test]
    fn duration_units_scale() {
        assert_eq!(format_duration(Duration::from_nanos(12)), "12 ns");
        assert_eq!(format_duration(Duration::from_micros(12)), "12.00 us");
        assert_eq!(format_duration(Duration::from_millis(12)), "12.00 ms");
        assert_eq!(format_duration(Duration::from_secs(2)), "2.000 s");
    }
}
