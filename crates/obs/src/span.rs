//! RAII span timers with hierarchical paths.
//!
//! A [`SpanGuard`] measures the wall-clock time between its creation and
//! drop and folds it into the registry's span statistics. Nested guards
//! build slash-separated paths from a thread-local scope stack: a span
//! `"fig4"` opened while `"dse"` is active records under `"dse/fig4"`,
//! so profile tables read as a call tree.

use crate::registry::Registry;
use std::cell::RefCell;
use std::time::Instant;

thread_local! {
    static SCOPE_STACK: RefCell<Vec<String>> = const { RefCell::new(Vec::new()) };
}

/// RAII timer for one span. Created by [`Registry`]-aware helpers such as
/// [`crate::span()`]; records on drop.
#[must_use = "a span guard measures until it is dropped"]
pub struct SpanGuard<'r> {
    registry: Option<&'r Registry>,
    path: String,
    start: Instant,
}

impl<'r> SpanGuard<'r> {
    /// Opens a span named `name` on `registry`. When the registry is
    /// disabled the guard is inert (no allocation beyond the empty path,
    /// no stack push, nothing recorded on drop).
    pub fn enter(registry: &'r Registry, name: &str) -> Self {
        if !registry.is_enabled() {
            return Self {
                registry: None,
                path: String::new(),
                start: Instant::now(),
            };
        }
        let path = SCOPE_STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            let path = match stack.last() {
                Some(parent) => format!("{parent}/{name}"),
                None => name.to_owned(),
            };
            stack.push(path.clone());
            path
        });
        registry.trace_span_begin(&path);
        Self {
            registry: Some(registry),
            path,
            start: Instant::now(),
        }
    }

    /// The full hierarchical path (empty for an inert guard).
    #[must_use]
    pub fn path(&self) -> &str {
        &self.path
    }
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        let Some(registry) = self.registry else {
            return;
        };
        let duration = self.start.elapsed();
        SCOPE_STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            // Pop our own frame; tolerate a foreign frame on top if guards
            // were dropped out of order.
            if let Some(pos) = stack.iter().rposition(|p| p == &self.path) {
                stack.remove(pos);
            }
        });
        registry.record_span(&self.path, duration);
        registry.trace_span_end(&self.path, duration);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn nested_guards_build_hierarchical_paths() {
        let r = Registry::new();
        r.enable();
        {
            let outer = SpanGuard::enter(&r, "dse");
            assert_eq!(outer.path(), "dse");
            {
                let inner = SpanGuard::enter(&r, "fig4");
                assert_eq!(inner.path(), "dse/fig4");
            }
            let sibling = SpanGuard::enter(&r, "fig5");
            assert_eq!(sibling.path(), "dse/fig5");
        }
        let snap = r.snapshot();
        let paths: Vec<&str> = snap.spans.iter().map(|(p, _)| p.as_str()).collect();
        assert_eq!(paths, vec!["dse", "dse/fig4", "dse/fig5"]);
    }

    #[test]
    fn nested_span_is_contained_in_parent_duration() {
        let r = Registry::new();
        r.enable();
        {
            let _outer = SpanGuard::enter(&r, "outer");
            let _inner = SpanGuard::enter(&r, "outer_inner");
            std::thread::sleep(Duration::from_millis(2));
        }
        let snap = r.snapshot();
        let outer = snap.span("outer").unwrap();
        let inner = snap.span("outer/outer_inner").unwrap();
        assert!(outer.total >= inner.total, "{outer:?} vs {inner:?}");
        assert!(inner.total >= Duration::from_millis(1));
    }

    #[test]
    fn disabled_registry_produces_inert_guards() {
        let r = Registry::new();
        let g = SpanGuard::enter(&r, "nope");
        assert_eq!(g.path(), "");
        drop(g);
        assert!(r.snapshot().spans.is_empty());
        // And the stack stays clean for later enabled spans.
        r.enable();
        let g = SpanGuard::enter(&r, "top");
        assert_eq!(g.path(), "top");
    }

    #[test]
    fn repeated_spans_accumulate_counts() {
        let r = Registry::new();
        r.enable();
        for _ in 0..3 {
            let _g = SpanGuard::enter(&r, "loop");
        }
        assert_eq!(r.snapshot().span("loop").unwrap().count, 3);
    }
}
