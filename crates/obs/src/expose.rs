//! OpenMetrics-style plain-text exposition of a [`Snapshot`].
//!
//! This is the format a future `pixel-served` daemon will return from
//! `/metrics`: one `# TYPE` comment per family, `snake_case` names under
//! a `pixel_` namespace, counters with the `_total` suffix, histograms
//! and spans exposed as summaries (`_count`/`_sum`), terminated by
//! `# EOF`. Only the subset of the OpenMetrics text format the registry
//! can populate is emitted — no labels, no exemplars — and the output
//! order is the snapshot's deterministic lexicographic order, so the
//! rendering is stable byte for byte (a unit test pins it).

use crate::registry::Snapshot;
use std::fmt::Write as _;

/// Maps a dot-namespaced metric name (`serve.queue.depth`) onto an
/// OpenMetrics-safe identifier (`pixel_serve_queue_depth`): lowercased,
/// every character outside `[a-z0-9_]` replaced by `_`, `pixel_`
/// prefixed.
#[must_use]
pub fn sanitize_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 6);
    out.push_str("pixel_");
    for c in name.chars() {
        let c = c.to_ascii_lowercase();
        if c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_' {
            out.push(c);
        } else {
            out.push('_');
        }
    }
    out
}

/// Renders the snapshot as OpenMetrics-style plain text.
#[must_use]
pub fn render_text(snapshot: &Snapshot) -> String {
    let mut out = String::new();
    for (name, value) in &snapshot.counters {
        let id = sanitize_name(name);
        let _ = writeln!(out, "# TYPE {id} counter");
        let _ = writeln!(out, "{id}_total {value}");
    }
    for (name, value) in &snapshot.gauges {
        let id = sanitize_name(name);
        let _ = writeln!(out, "# TYPE {id} gauge");
        let _ = writeln!(out, "{id} {value}");
    }
    for (name, h) in &snapshot.histograms {
        let id = sanitize_name(name);
        let _ = writeln!(out, "# TYPE {id} summary");
        let _ = writeln!(out, "{id}_count {}", h.count);
        let _ = writeln!(out, "{id}_sum {}", h.sum);
    }
    for (path, s) in &snapshot.spans {
        let id = sanitize_name(&format!("span.{path}"));
        let _ = writeln!(out, "# TYPE {id} summary");
        let _ = writeln!(out, "{id}_count {}", s.count);
        let _ = writeln!(out, "{id}_sum {}", s.total.as_secs_f64());
    }
    out.push_str("# EOF\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Registry;
    use std::time::Duration;

    #[test]
    fn sanitize_maps_dots_and_slashes_to_underscores() {
        assert_eq!(
            sanitize_name("serve.queue.depth"),
            "pixel_serve_queue_depth"
        );
        assert_eq!(sanitize_name("dse/fig4"), "pixel_dse_fig4");
        assert_eq!(sanitize_name("Mixed-Case"), "pixel_mixed_case");
    }

    #[test]
    fn exposition_format_is_pinned() {
        let r = Registry::new();
        r.enable();
        r.add("serve.arrivals", 400);
        r.add("fabric.windows", 108);
        r.gauge("serve.utilization", 0.875);
        r.observe("serve.batch_size", 4.0);
        r.observe("serve.batch_size", 2.0);
        r.record_span("reproduce", Duration::from_micros(3_500));
        r.record_span("reproduce/serve", Duration::from_micros(1_200));
        let expected = "\
# TYPE pixel_fabric_windows counter
pixel_fabric_windows_total 108
# TYPE pixel_serve_arrivals counter
pixel_serve_arrivals_total 400
# TYPE pixel_serve_utilization gauge
pixel_serve_utilization 0.875
# TYPE pixel_serve_batch_size summary
pixel_serve_batch_size_count 2
pixel_serve_batch_size_sum 6
# TYPE pixel_span_reproduce summary
pixel_span_reproduce_count 1
pixel_span_reproduce_sum 0.0035
# TYPE pixel_span_reproduce_serve summary
pixel_span_reproduce_serve_count 1
pixel_span_reproduce_serve_sum 0.0012
# EOF
";
        assert_eq!(render_text(&r.snapshot()), expected);
    }

    #[test]
    fn empty_snapshot_is_just_eof() {
        assert_eq!(render_text(&Snapshot::default()), "# EOF\n");
    }
}
