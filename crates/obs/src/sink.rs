//! Trace output: a line-buffered JSONL event writer.
//!
//! Each event is one JSON object per line — `span_begin`, `span_end`,
//! and, at [`Registry::finish_trace`](crate::Registry::finish_trace),
//! one `counter`/`gauge` line per metric. The format is flat enough to
//! parse with any JSON library (or a grep) and needs no external crate
//! to produce.

use std::io::Write;

/// Escapes a string for embedding inside a JSON string literal.
#[must_use]
pub fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// A JSONL event writer over any `Write + Send` destination.
pub(crate) struct TraceSink {
    writer: Box<dyn Write + Send>,
}

impl TraceSink {
    pub(crate) fn new(writer: Box<dyn Write + Send>) -> Self {
        Self { writer }
    }

    /// Writes one event line. I/O errors are swallowed: tracing must
    /// never panic the instrumented computation.
    pub(crate) fn write_line(&mut self, line: &str) {
        let _ = writeln!(self.writer, "{line}");
    }

    pub(crate) fn flush(&mut self) {
        let _ = self.writer.flush();
    }
}

/// A minimal JSONL parser for round-trip tests and audit tooling: splits
/// a line into its top-level `"key":value` pairs (values as raw text).
/// Returns `None` when the line is not a flat JSON object.
#[must_use]
pub fn parse_flat_object(line: &str) -> Option<Vec<(String, String)>> {
    let inner = line.trim().strip_prefix('{')?.strip_suffix('}')?;
    let mut pairs = Vec::new();
    let mut rest = inner;
    while !rest.is_empty() {
        rest = rest.trim_start_matches(',');
        if rest.is_empty() {
            break;
        }
        let key_start = rest.find('"')? + 1;
        let key_end = key_start + rest[key_start..].find('"')?;
        let key = &rest[key_start..key_end];
        let after = rest[key_end + 1..].strip_prefix(':')?;
        let (value, remainder) = if let Some(v) = after.strip_prefix('"') {
            // String value: scan to the next unescaped quote.
            let mut end = None;
            let mut escaped = false;
            for (i, c) in v.char_indices() {
                if escaped {
                    escaped = false;
                } else if c == '\\' {
                    escaped = true;
                } else if c == '"' {
                    end = Some(i);
                    break;
                }
            }
            let end = end?;
            (v[..end].to_owned(), &v[end + 1..])
        } else {
            let end = after.find(',').unwrap_or(after.len());
            (after[..end].trim().to_owned(), &after[end..])
        };
        pairs.push((key.to_owned(), value));
        rest = remainder;
    }
    Some(pairs)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escaping_covers_quotes_and_control_characters() {
        assert_eq!(escape_json("plain/path"), "plain/path");
        assert_eq!(escape_json("a\"b"), "a\\\"b");
        assert_eq!(escape_json("a\\b"), "a\\\\b");
        assert_eq!(escape_json("a\nb"), "a\\nb");
        assert_eq!(escape_json("\u{1}"), "\\u0001");
    }

    #[test]
    fn parser_reads_back_escaped_strings() {
        let line = "{\"event\":\"span_end\",\"path\":\"dse/fig4\",\"dur_us\":42}";
        let pairs = parse_flat_object(line).unwrap();
        assert_eq!(
            pairs,
            vec![
                ("event".to_owned(), "span_end".to_owned()),
                ("path".to_owned(), "dse/fig4".to_owned()),
                ("dur_us".to_owned(), "42".to_owned()),
            ]
        );
    }

    #[test]
    fn parser_rejects_non_objects() {
        assert!(parse_flat_object("not json").is_none());
        assert!(parse_flat_object("[1,2]").is_none());
    }
}
