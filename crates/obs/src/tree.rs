//! Span-tree aggregation: parent/child nesting, self-vs-total time, and
//! a collapsed-stack (flamegraph) export.
//!
//! Span paths are slash-separated (`"reproduce/fig7"`), built by nested
//! RAII [`SpanGuard`](crate::span::SpanGuard)s. This module folds a
//! [`Snapshot`]'s flat path→stats map back into the call tree: each
//! [`SpanNode`] carries its own [`SpanStats`] plus a **self time** —
//! total time minus the time attributed to its children — so hot
//! *leaves* are distinguishable from hot *subtrees*. Parents that never
//! completed a span of their own (e.g. a path recorded only as
//! `"a/b"`) appear as implicit zero-count nodes.
//!
//! [`SpanNode::collapsed_stacks`] renders the tree in the collapsed
//! stack-line format consumed by flamegraph tooling (`inferno`,
//! `flamegraph.pl`): one `seg;seg;seg weight` line per node, weighted by
//! self time in microseconds.

use crate::registry::{Snapshot, SpanStats};
use std::fmt::Write as _;
use std::time::Duration;

/// One node of the reconstructed span call tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanNode {
    /// Last path segment (empty for the root).
    pub name: String,
    /// Full slash-separated path (empty for the root).
    pub path: String,
    /// Aggregated stats recorded at exactly this path (zeroed for
    /// implicit intermediate nodes).
    pub stats: SpanStats,
    /// Total time minus time spent in child spans (saturating: clock
    /// skew between overlapping guards never yields negative time).
    pub self_time: Duration,
    /// Child nodes, in deterministic (lexicographic segment) order.
    pub children: Vec<SpanNode>,
}

impl SpanNode {
    fn empty(name: &str, path: &str) -> Self {
        Self {
            name: name.to_owned(),
            path: path.to_owned(),
            stats: SpanStats::default(),
            self_time: Duration::ZERO,
            children: Vec::new(),
        }
    }

    /// Builds the span tree of a snapshot. The returned root is a
    /// synthetic node (empty name) holding every top-level span.
    #[must_use]
    pub fn build(snapshot: &Snapshot) -> Self {
        let mut root = Self::empty("", "");
        for (path, stats) in &snapshot.spans {
            root.insert(path, *stats);
        }
        root.finalize();
        root
    }

    fn insert(&mut self, path: &str, stats: SpanStats) {
        let mut node = self;
        let mut prefix = String::new();
        for segment in path.split('/') {
            if !prefix.is_empty() {
                prefix.push('/');
            }
            prefix.push_str(segment);
            let at = match node.children.iter().position(|c| c.name == segment) {
                Some(at) => at,
                None => {
                    node.children.push(Self::empty(segment, &prefix));
                    node.children.len() - 1
                }
            };
            node = &mut node.children[at];
        }
        node.stats = stats;
    }

    /// Computes self times bottom-up.
    fn finalize(&mut self) {
        let mut in_children = Duration::ZERO;
        for child in &mut self.children {
            child.finalize();
            in_children += child.stats.total;
        }
        self.self_time = self.stats.total.saturating_sub(in_children);
    }

    /// Sum of `total` over the direct children (what self time is
    /// measured against).
    #[must_use]
    pub fn child_total(&self) -> Duration {
        self.children.iter().map(|c| c.stats.total).sum()
    }

    /// Depth-first walk over the real tree nodes (root excluded),
    /// yielding `(depth, node)` with depth 0 for top-level spans.
    fn walk<'a>(&'a self, depth: usize, f: &mut impl FnMut(usize, &'a Self)) {
        for child in &self.children {
            f(depth, child);
            child.walk(depth + 1, f);
        }
    }

    /// Renders the tree as collapsed stack lines (`a;b;c weight`), one
    /// per node, weighted by **self time in microseconds**. Nodes whose
    /// self time rounds to zero microseconds are kept (weight 0) so the
    /// tree shape survives; feed the output directly to
    /// `inferno-flamegraph` or `flamegraph.pl`.
    #[must_use]
    pub fn collapsed_stacks(&self) -> String {
        let mut out = String::new();
        self.walk(0, &mut |_, node| {
            let _ = writeln!(
                out,
                "{} {}",
                node.path.replace('/', ";"),
                node.self_time.as_micros()
            );
        });
        out
    }
}

/// Renders the span section of the profile table as an indented tree
/// with a self-time column (used by
/// [`profile_table`](crate::profile::profile_table)).
#[must_use]
pub fn render_span_tree(
    snapshot: &Snapshot,
    format_duration: impl Fn(Duration) -> String,
) -> String {
    let root = SpanNode::build(snapshot);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<40} | {:>8} {:>12} {:>12} {:>12}",
        "span", "count", "total", "self", "max"
    );
    root.walk(0, &mut |depth, node| {
        let label = format!("{}{}", "  ".repeat(depth), node.name);
        let _ = writeln!(
            out,
            "{label:<40} | {:>8} {:>12} {:>12} {:>12}",
            node.stats.count,
            format_duration(node.stats.total),
            format_duration(node.self_time),
            format_duration(node.stats.max),
        );
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Registry;

    fn sample_registry() -> Registry {
        let r = Registry::new();
        r.enable();
        r.record_span("app", Duration::from_micros(1000));
        r.record_span("app/load", Duration::from_micros(300));
        r.record_span("app/solve", Duration::from_micros(500));
        r.record_span("app/solve/inner", Duration::from_micros(200));
        // An orphan path whose parent never completed a span.
        r.record_span("other/leaf", Duration::from_micros(40));
        r
    }

    #[test]
    fn tree_reconstructs_nesting_and_self_time() {
        let root = SpanNode::build(&sample_registry().snapshot());
        assert_eq!(root.children.len(), 2);
        let app = &root.children[0];
        assert_eq!(app.path, "app");
        assert_eq!(app.children.len(), 2);
        assert_eq!(app.self_time, Duration::from_micros(200));
        let solve = &app.children[1];
        assert_eq!(solve.name, "solve");
        assert_eq!(solve.self_time, Duration::from_micros(300));
        assert_eq!(solve.children[0].self_time, Duration::from_micros(200));
        // Implicit parent: zero stats, zero self time.
        let other = &root.children[1];
        assert_eq!(other.name, "other");
        assert_eq!(other.stats.count, 0);
        assert_eq!(other.self_time, Duration::ZERO);
        assert_eq!(other.children[0].path, "other/leaf");
    }

    #[test]
    fn self_time_saturates_on_overlap() {
        let r = Registry::new();
        r.enable();
        // Children report more time than the parent (overlapping guards
        // on racing threads can do this): self time clamps at zero.
        r.record_span("p", Duration::from_micros(10));
        r.record_span("p/a", Duration::from_micros(8));
        r.record_span("p/b", Duration::from_micros(7));
        let root = SpanNode::build(&r.snapshot());
        assert_eq!(root.children[0].self_time, Duration::ZERO);
    }

    #[test]
    fn collapsed_stacks_use_semicolons_and_self_micros() {
        let root = SpanNode::build(&sample_registry().snapshot());
        let stacks = root.collapsed_stacks();
        let lines: Vec<&str> = stacks.lines().collect();
        assert!(lines.contains(&"app 200"));
        assert!(lines.contains(&"app;solve 300"));
        assert!(lines.contains(&"app;solve;inner 200"));
        assert!(lines.contains(&"other 0"));
        assert!(lines.contains(&"other;leaf 40"));
        // Total self time equals total recorded root time.
        let total: u64 = lines
            .iter()
            .map(|l| l.rsplit(' ').next().unwrap().parse::<u64>().unwrap())
            .sum();
        assert_eq!(total, 1040);
    }

    #[test]
    fn render_indents_children_by_depth() {
        let text = render_span_tree(&sample_registry().snapshot(), |d| {
            format!("{}us", d.as_micros())
        });
        assert!(text.contains("\napp "));
        assert!(text.contains("\n  load "));
        assert!(text.contains("\n    inner "));
        let header = text.lines().next().unwrap();
        assert!(header.contains("self"));
    }

    #[test]
    fn empty_snapshot_builds_bare_root() {
        let root = SpanNode::build(&Snapshot::default());
        assert!(root.children.is_empty());
        assert!(root.collapsed_stacks().is_empty());
    }
}
