//! Observability for the PIXEL reproduction: span timers, counters,
//! gauges, histograms, a JSONL trace sink, and plain-text profile tables.
//!
//! Everything is std-only with zero external dependencies. The crate has
//! two layers:
//!
//! * An instantiable [`Registry`] — thread-safe, snapshot-able, with
//!   deterministic (lexicographic) metric ordering. Tests and embedded
//!   uses create their own.
//! * A process-global registry behind free functions ([`enable`],
//!   [`add`], [`span()`], [`snapshot`], …) that the instrumented crates
//!   (`pixel-core`, `pixel-dnn`, `pixel-bench`) call. It starts
//!   **disabled**: every hook is one relaxed atomic load until a profile
//!   or trace is requested, so instrumentation stays effectively free in
//!   normal runs.
//!
//! Span timers are RAII guards ([`span::SpanGuard`]); nesting them builds
//! slash-separated hierarchical paths (`"dse/fig4"`). Installing a trace
//! sink ([`install_trace`]) streams `span_begin`/`span_end` events as
//! JSONL and, on [`finish_trace`], appends one line per counter/gauge.

pub mod expose;
pub mod profile;
pub mod registry;
pub mod sink;
pub mod span;
pub mod tree;

pub use registry::{HistogramStats, Registry, Snapshot, SpanStats};
pub use sink::{escape_json, parse_flat_object};
pub use span::SpanGuard;
pub use tree::SpanNode;

use std::io::Write;
use std::sync::OnceLock;

static GLOBAL: OnceLock<Registry> = OnceLock::new();

/// The process-global registry.
#[must_use]
pub fn global() -> &'static Registry {
    GLOBAL.get_or_init(Registry::new)
}

/// Enables recording on the global registry.
pub fn enable() {
    global().enable();
}

/// Disables recording on the global registry (data is kept).
pub fn disable() {
    global().disable();
}

/// Whether the global registry is recording.
#[must_use]
pub fn enabled() -> bool {
    global().is_enabled()
}

/// Adds `delta` to the global counter `name`.
pub fn add(name: &str, delta: u64) {
    global().add(name, delta);
}

/// Sets the global gauge `name`.
pub fn gauge(name: &str, value: f64) {
    global().gauge(name, value);
}

/// Records one observation into the global histogram `name`.
pub fn observe(name: &str, value: f64) {
    global().observe(name, value);
}

/// Opens an RAII span on the global registry.
pub fn span(name: &str) -> SpanGuard<'static> {
    SpanGuard::enter(global(), name)
}

/// Snapshots the global registry.
#[must_use]
pub fn snapshot() -> Snapshot {
    global().snapshot()
}

/// Clears the global registry's metrics.
pub fn reset() {
    global().reset();
}

/// Renders the global registry's current profile table.
#[must_use]
pub fn profile_table() -> String {
    profile::profile_table(&global().snapshot())
}

/// Installs a JSONL trace sink on the global registry.
pub fn install_trace(writer: Box<dyn Write + Send>) {
    global().install_trace(writer);
}

/// Whether the global registry has a trace sink installed.
#[must_use]
pub fn has_trace() -> bool {
    global().has_trace()
}

/// Streams one caller-formatted flat-JSON event line to the global
/// trace sink (no-op while disabled or without a sink).
pub fn trace_event(line: &str) {
    global().trace_event(line);
}

/// Finishes (snapshot + flush + remove) the global trace sink.
pub fn finish_trace() {
    global().finish_trace();
}

/// Renders the global registry as OpenMetrics-style plain text.
#[must_use]
pub fn render_text() -> String {
    expose::render_text(&global().snapshot())
}
