//! The metric registry: counters, gauges, histograms, and span statistics
//! behind one thread-safe store.
//!
//! All maps are `BTreeMap`s so snapshots iterate in lexicographic name
//! order — reports and traces are deterministic run to run. The hot path
//! (`add` while disabled) is a single relaxed atomic load.

use crate::sink::{escape_json, TraceSink};
use std::collections::BTreeMap;
use std::io::Write;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

/// Aggregated statistics of one histogram.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HistogramStats {
    /// Number of observations.
    pub count: u64,
    /// Sum of observed values.
    pub sum: f64,
    /// Smallest observation.
    pub min: f64,
    /// Largest observation.
    pub max: f64,
}

impl HistogramStats {
    fn observe(&mut self, value: f64) {
        self.count += 1;
        self.sum += value;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Mean of the observations (0 when empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            #[allow(clippy::cast_precision_loss)]
            {
                self.sum / self.count as f64
            }
        }
    }
}

impl Default for HistogramStats {
    fn default() -> Self {
        Self {
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }
}

/// Aggregated statistics of one span path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SpanStats {
    /// Number of completed spans at this path.
    pub count: u64,
    /// Total time spent inside the span.
    pub total: Duration,
    /// Shortest single span.
    pub min: Duration,
    /// Longest single span.
    pub max: Duration,
}

impl SpanStats {
    fn record(&mut self, duration: Duration) {
        if self.count == 0 {
            self.min = duration;
            self.max = duration;
        } else {
            self.min = self.min.min(duration);
            self.max = self.max.max(duration);
        }
        self.count += 1;
        self.total += duration;
    }

    /// Mean span duration (zero when no spans completed).
    #[must_use]
    pub fn mean(&self) -> Duration {
        if self.count == 0 {
            Duration::ZERO
        } else {
            self.total / u32::try_from(self.count).unwrap_or(u32::MAX)
        }
    }
}

#[derive(Default)]
struct State {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, HistogramStats>,
    spans: BTreeMap<String, SpanStats>,
}

/// A point-in-time copy of every metric, in deterministic (lexicographic)
/// name order.
#[derive(Debug, Clone, Default)]
pub struct Snapshot {
    /// Counter name/value pairs.
    pub counters: Vec<(String, u64)>,
    /// Gauge name/value pairs.
    pub gauges: Vec<(String, f64)>,
    /// Histogram name/stats pairs.
    pub histograms: Vec<(String, HistogramStats)>,
    /// Span path/stats pairs.
    pub spans: Vec<(String, SpanStats)>,
}

impl Snapshot {
    /// Looks up a counter by exact name.
    #[must_use]
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, v)| v)
    }

    /// Looks up a histogram's stats by exact name.
    #[must_use]
    pub fn histogram(&self, name: &str) -> Option<&HistogramStats> {
        self.histograms
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, h)| h)
    }

    /// Looks up a span's stats by exact path.
    #[must_use]
    pub fn span(&self, path: &str) -> Option<&SpanStats> {
        self.spans.iter().find(|(p, _)| p == path).map(|(_, s)| s)
    }
}

/// A thread-safe metric registry.
///
/// Registries start **disabled**: every recording call short-circuits on
/// one atomic load, so instrumented code costs nearly nothing until a
/// profile or trace is requested. [`Registry::enable`] turns recording
/// on.
pub struct Registry {
    enabled: AtomicBool,
    origin: Instant,
    state: Mutex<State>,
    trace: Mutex<Option<TraceSink>>,
}

impl Default for Registry {
    fn default() -> Self {
        Self::new()
    }
}

/// Locks a registry mutex, recovering the data if a panicking thread
/// poisoned it: the registry holds plain metric state that stays
/// coherent, and observability must never amplify a failure elsewhere.
fn lock_unpoisoned<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

impl Registry {
    /// Creates a disabled registry.
    #[must_use]
    pub fn new() -> Self {
        Self {
            enabled: AtomicBool::new(false),
            origin: Instant::now(),
            state: Mutex::new(State::default()),
            trace: Mutex::new(None),
        }
    }

    /// Turns recording on.
    pub fn enable(&self) {
        self.enabled.store(true, Ordering::Relaxed);
    }

    /// Turns recording off (already-recorded data is kept).
    pub fn disable(&self) {
        self.enabled.store(false, Ordering::Relaxed);
    }

    /// Whether recording is on.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Microseconds since the registry was created (trace timestamps).
    pub(crate) fn elapsed_us(&self) -> u128 {
        self.origin.elapsed().as_micros()
    }

    /// Adds `delta` to the counter `name`, creating it at zero first.
    pub fn add(&self, name: &str, delta: u64) {
        if !self.is_enabled() {
            return;
        }
        let mut state = lock_unpoisoned(&self.state);
        match state.counters.get_mut(name) {
            Some(v) => *v += delta,
            None => {
                state.counters.insert(name.to_owned(), delta);
            }
        }
    }

    /// Sets the gauge `name` to `value` (last write wins).
    pub fn gauge(&self, name: &str, value: f64) {
        if !self.is_enabled() {
            return;
        }
        let mut state = lock_unpoisoned(&self.state);
        state.gauges.insert(name.to_owned(), value);
    }

    /// Records one observation into the histogram `name`.
    pub fn observe(&self, name: &str, value: f64) {
        if !self.is_enabled() {
            return;
        }
        let mut state = lock_unpoisoned(&self.state);
        state
            .histograms
            .entry(name.to_owned())
            .or_default()
            .observe(value);
    }

    /// Folds one completed span of `duration` into the stats at `path`.
    ///
    /// Normally called by the RAII [`SpanGuard`](crate::span::SpanGuard)
    /// on drop; public so tests and offline importers can inject exact
    /// durations.
    pub fn record_span(&self, path: &str, duration: Duration) {
        if !self.is_enabled() {
            return;
        }
        let mut state = lock_unpoisoned(&self.state);
        state
            .spans
            .entry(path.to_owned())
            .or_default()
            .record(duration);
    }

    /// Copies every metric out, in deterministic name order.
    #[must_use]
    pub fn snapshot(&self) -> Snapshot {
        let state = lock_unpoisoned(&self.state);
        Snapshot {
            counters: state
                .counters
                .iter()
                .map(|(k, &v)| (k.clone(), v))
                .collect(),
            gauges: state.gauges.iter().map(|(k, &v)| (k.clone(), v)).collect(),
            histograms: state
                .histograms
                .iter()
                .map(|(k, &v)| (k.clone(), v))
                .collect(),
            spans: state.spans.iter().map(|(k, &v)| (k.clone(), v)).collect(),
        }
    }

    /// Clears every metric (enabled flag and trace sink are untouched).
    pub fn reset(&self) {
        let mut state = lock_unpoisoned(&self.state);
        *state = State::default();
    }

    /// Installs a JSONL trace sink; span begin/end events stream to it
    /// live. Any previously installed sink is flushed before being
    /// replaced, so its writer sees every event streamed up to the
    /// handover (it does *not* get the final snapshot lines that
    /// [`Registry::finish_trace`] emits).
    pub fn install_trace(&self, writer: Box<dyn Write + Send>) {
        let mut trace = lock_unpoisoned(&self.trace);
        if let Some(mut old) = trace.take() {
            old.flush();
        }
        *trace = Some(TraceSink::new(writer));
    }

    /// True when a JSONL trace sink is currently installed.
    #[must_use]
    pub fn has_trace(&self) -> bool {
        lock_unpoisoned(&self.trace).is_some()
    }

    /// Streams one caller-formatted event line to the installed trace
    /// sink. The line must be a complete flat JSON object (the sink
    /// appends the newline); instrumented domains use this to spill
    /// their own typed events — e.g. the serving simulator's
    /// virtual-time request lifecycle — into the same JSONL stream as
    /// the span events. No-op while disabled or without a sink.
    pub fn trace_event(&self, line: &str) {
        if !self.is_enabled() {
            return;
        }
        let mut trace = lock_unpoisoned(&self.trace);
        if let Some(sink) = trace.as_mut() {
            sink.write_line(line);
        }
    }

    /// Emits a final counter/gauge snapshot into the trace and removes
    /// the sink, flushing it. No-op without an installed sink.
    pub fn finish_trace(&self) {
        let mut trace = lock_unpoisoned(&self.trace);
        if let Some(mut sink) = trace.take() {
            let snapshot = self.snapshot();
            for (name, value) in &snapshot.counters {
                sink.write_line(&format!(
                    "{{\"event\":\"counter\",\"name\":\"{}\",\"value\":{value}}}",
                    escape_json(name)
                ));
            }
            for (name, value) in &snapshot.gauges {
                sink.write_line(&format!(
                    "{{\"event\":\"gauge\",\"name\":\"{}\",\"value\":{value}}}",
                    escape_json(name)
                ));
            }
            sink.flush();
        }
    }

    pub(crate) fn trace_span_begin(&self, path: &str) {
        let mut trace = lock_unpoisoned(&self.trace);
        if let Some(sink) = trace.as_mut() {
            sink.write_line(&format!(
                "{{\"event\":\"span_begin\",\"path\":\"{}\",\"t_us\":{}}}",
                escape_json(path),
                self.elapsed_us()
            ));
        }
    }

    pub(crate) fn trace_span_end(&self, path: &str, duration: Duration) {
        let mut trace = lock_unpoisoned(&self.trace);
        if let Some(sink) = trace.as_mut() {
            sink.write_line(&format!(
                "{{\"event\":\"span_end\",\"path\":\"{}\",\"t_us\":{},\"dur_us\":{}}}",
                escape_json(path),
                self.elapsed_us(),
                duration.as_micros()
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_registry_records_nothing() {
        let r = Registry::new();
        r.add("a", 3);
        r.gauge("g", 1.5);
        r.observe("h", 2.0);
        r.record_span("s", Duration::from_millis(1));
        let snap = r.snapshot();
        assert!(snap.counters.is_empty());
        assert!(snap.gauges.is_empty());
        assert!(snap.histograms.is_empty());
        assert!(snap.spans.is_empty());
    }

    #[test]
    fn counters_accumulate() {
        let r = Registry::new();
        r.enable();
        r.add("mac_ops", 5);
        r.add("mac_ops", 7);
        assert_eq!(r.snapshot().counter("mac_ops"), Some(12));
    }

    #[test]
    fn gauges_last_write_wins() {
        let r = Registry::new();
        r.enable();
        r.gauge("utilization", 0.5);
        r.gauge("utilization", 0.75);
        assert_eq!(r.snapshot().gauges, vec![("utilization".to_owned(), 0.75)]);
    }

    #[test]
    fn histogram_statistics() {
        let r = Registry::new();
        r.enable();
        for v in [1.0, 2.0, 6.0] {
            r.observe("lat", v);
        }
        let snap = r.snapshot();
        let (_, h) = &snap.histograms[0];
        assert_eq!(h.count, 3);
        assert!((h.mean() - 3.0).abs() < 1e-12);
        assert_eq!(h.min, 1.0);
        assert_eq!(h.max, 6.0);
    }

    #[test]
    fn span_stats_fold_min_max() {
        let r = Registry::new();
        r.enable();
        r.record_span("p", Duration::from_micros(10));
        r.record_span("p", Duration::from_micros(30));
        let snap = r.snapshot();
        let s = snap.span("p").unwrap();
        assert_eq!(s.count, 2);
        assert_eq!(s.total, Duration::from_micros(40));
        assert_eq!(s.min, Duration::from_micros(10));
        assert_eq!(s.max, Duration::from_micros(30));
        assert_eq!(s.mean(), Duration::from_micros(20));
    }

    #[test]
    fn snapshot_order_is_lexicographic_regardless_of_insertion() {
        let r = Registry::new();
        r.enable();
        for name in ["zeta", "alpha", "mid", "beta"] {
            r.add(name, 1);
        }
        let snap = r.snapshot();
        let names: Vec<&str> = snap.counters.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, vec!["alpha", "beta", "mid", "zeta"]);
    }

    #[test]
    fn reset_clears_but_keeps_enabled() {
        let r = Registry::new();
        r.enable();
        r.add("a", 1);
        r.reset();
        assert!(r.is_enabled());
        assert!(r.snapshot().counters.is_empty());
    }
}
