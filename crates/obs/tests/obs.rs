//! Integration tests for the observability crate: thread-safety,
//! span-timing invariants, trace round-trips, and the pinned profile
//! table format.

use pixel_obs::profile::profile_table;
use pixel_obs::sink::parse_flat_object;
use pixel_obs::{Registry, SpanGuard};
use std::io::Write;
use std::sync::{Arc, Mutex};
use std::time::Duration;

#[test]
fn concurrent_counter_increments_are_lossless() {
    let registry = Arc::new(Registry::new());
    registry.enable();
    let threads: Vec<_> = (0..8)
        .map(|t| {
            let r = Arc::clone(&registry);
            std::thread::spawn(move || {
                for _ in 0..1_000 {
                    r.add("shared", 1);
                    r.add(&format!("thread/{t}"), 1);
                }
            })
        })
        .collect();
    for t in threads {
        t.join().unwrap();
    }
    let snap = registry.snapshot();
    assert_eq!(snap.counter("shared"), Some(8_000));
    for t in 0..8 {
        assert_eq!(snap.counter(&format!("thread/{t}")), Some(1_000));
    }
}

#[test]
fn concurrent_spans_keep_per_thread_paths() {
    // Scope stacks are thread-local: spans opened on different threads
    // must not interleave into each other's paths.
    let registry = Arc::new(Registry::new());
    registry.enable();
    let threads: Vec<_> = (0..4)
        .map(|t| {
            let r = Arc::clone(&registry);
            std::thread::spawn(move || {
                for _ in 0..50 {
                    let _outer = SpanGuard::enter(&r, &format!("t{t}"));
                    let _inner = SpanGuard::enter(&r, "work");
                }
            })
        })
        .collect();
    for t in threads {
        t.join().unwrap();
    }
    let snap = registry.snapshot();
    for t in 0..4 {
        assert_eq!(snap.span(&format!("t{t}")).unwrap().count, 50);
        assert_eq!(snap.span(&format!("t{t}/work")).unwrap().count, 50);
    }
}

#[test]
fn nested_span_durations_are_monotone() {
    // An enclosing span can never be shorter than a span it contains,
    // and min ≤ mean ≤ max must hold for every recorded path.
    let r = Registry::new();
    r.enable();
    for _ in 0..5 {
        let _outer = SpanGuard::enter(&r, "outer");
        let _inner = SpanGuard::enter(&r, "inner");
        std::thread::sleep(Duration::from_millis(1));
    }
    let snap = r.snapshot();
    let outer = snap.span("outer").unwrap();
    let inner = snap.span("outer/inner").unwrap();
    assert!(outer.total >= inner.total);
    assert!(outer.max >= inner.max);
    for (path, s) in &snap.spans {
        assert!(s.min <= s.mean() && s.mean() <= s.max, "{path}: {s:?}");
        assert!(s.total >= s.max, "{path}: {s:?}");
    }
}

/// A `Write` sink tests can read back after the registry consumed it.
#[derive(Clone, Default)]
struct SharedBuffer(Arc<Mutex<Vec<u8>>>);

impl Write for SharedBuffer {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.lock().unwrap().extend_from_slice(buf);
        Ok(buf.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

#[test]
fn trace_round_trips_through_the_jsonl_parser() {
    let r = Registry::new();
    r.enable();
    let buffer = SharedBuffer::default();
    r.install_trace(Box::new(buffer.clone()));
    {
        let _outer = SpanGuard::enter(&r, "dse");
        let _inner = SpanGuard::enter(&r, "fig4");
    }
    r.add("mac_ops", 42);
    r.gauge("utilization", 0.75);
    r.finish_trace();

    let bytes = buffer.0.lock().unwrap().clone();
    let text = String::from_utf8(bytes).unwrap();
    let events: Vec<Vec<(String, String)>> = text
        .lines()
        .map(|line| parse_flat_object(line).unwrap_or_else(|| panic!("bad JSONL: {line}")))
        .collect();

    let field = |ev: &[(String, String)], key: &str| -> String {
        ev.iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.clone())
            .unwrap_or_default()
    };
    // Live span events stream in begin/end order, innermost end first.
    let kinds: Vec<String> = events.iter().map(|e| field(e, "event")).collect();
    assert_eq!(
        kinds,
        vec![
            "span_begin",
            "span_begin",
            "span_end",
            "span_end",
            "counter",
            "gauge"
        ]
    );
    assert_eq!(field(&events[1], "path"), "dse/fig4");
    assert_eq!(field(&events[2], "path"), "dse/fig4");
    assert_eq!(field(&events[3], "path"), "dse");
    assert_eq!(field(&events[4], "name"), "mac_ops");
    assert_eq!(field(&events[4], "value"), "42");
    assert_eq!(field(&events[5], "name"), "utilization");
    assert_eq!(field(&events[5], "value"), "0.75");
    // Timestamps and durations parse as integers.
    for ev in &events[..4] {
        let t: u128 = field(ev, "t_us").parse().unwrap();
        let _ = t;
    }
    let dur: u64 = field(&events[2], "dur_us").parse().unwrap();
    let _ = dur;
}

#[test]
fn profile_table_format_is_pinned() {
    // The exact byte-for-byte layout the `reproduce --profile` flag
    // prints. Deliberate format changes must update this snapshot.
    let r = Registry::new();
    r.enable();
    r.record_span("reproduce", Duration::from_micros(3500));
    r.record_span("reproduce/table1", Duration::from_micros(1200));
    r.record_span("reproduce/table1", Duration::from_micros(1800));
    r.add("dnn.analysis.layers", 16);
    r.add("dse.model_evals", 3);
    r.gauge("sim.last_utilization", 0.875);
    r.observe("latency_ms", 2.0);
    r.observe("latency_ms", 4.0);
    let expected = "\
span                                     |    count        total         self          max
reproduce                                |        1      3.50 ms    500.00 us      3.50 ms
  table1                                 |        2      3.00 ms      3.00 ms      1.80 ms

counter                                  |            value
dnn.analysis.layers                      |               16
dse.model_evals                          |                3

gauge                                    |            value
sim.last_utilization                     |           0.8750

histogram                                |    count         mean          min          max
latency_ms                               |        2        3.000        2.000        4.000
";
    assert_eq!(profile_table(&r.snapshot()), expected);
}

#[test]
fn escaping_survives_hostile_span_names_in_traces() {
    // Quotes, backslashes, and control characters in span names must
    // come back intact through the JSONL escape/parse round trip.
    let hostile = "evil \"quoted\\path\"\twith\nnewline\u{1}";
    let r = Registry::new();
    r.enable();
    let buffer = SharedBuffer::default();
    r.install_trace(Box::new(buffer.clone()));
    {
        let _span = SpanGuard::enter(&r, hostile);
    }
    r.add(hostile, 7);
    r.finish_trace();
    let bytes = buffer.0.lock().unwrap().clone();
    let text = String::from_utf8(bytes).unwrap();
    assert_eq!(text.lines().count(), 3, "begin, end, counter:\n{text}");
    for line in text.lines() {
        let fields =
            parse_flat_object(line).unwrap_or_else(|| panic!("unparseable JSONL line: {line}"));
        let value = fields
            .iter()
            .find(|(k, _)| k == "path" || k == "name")
            .map(|(_, v)| v.clone())
            .expect("a path or name field");
        // The parser returns the raw (still-escaped) string body: it
        // must match the canonical escape of the hostile name exactly.
        assert_eq!(
            value,
            pixel_obs::escape_json(hostile),
            "lossy escape in {line}"
        );
        // The escaped line itself holds no raw control bytes.
        assert!(line.chars().all(|c| c >= ' '), "raw control char: {line:?}");
    }
}

#[test]
fn reinstalling_a_trace_sink_splits_the_stream_cleanly() {
    // A second install_trace must flush the first sink and route every
    // later event to the new one — nothing lost, nothing duplicated.
    let r = Registry::new();
    r.enable();
    let first = SharedBuffer::default();
    let second = SharedBuffer::default();
    r.install_trace(Box::new(first.clone()));
    {
        let _span = SpanGuard::enter(&r, "early");
    }
    r.install_trace(Box::new(second.clone()));
    {
        let _span = SpanGuard::enter(&r, "late");
    }
    r.add("c", 1);
    r.finish_trace();

    let first_text = String::from_utf8(first.0.lock().unwrap().clone()).unwrap();
    let second_text = String::from_utf8(second.0.lock().unwrap().clone()).unwrap();
    // First sink: exactly the events before the handover, flushed.
    assert_eq!(first_text.lines().count(), 2);
    assert!(first_text.contains("\"path\":\"early\""));
    assert!(!first_text.contains("late"));
    // Second sink: the later span plus the finish_trace snapshot.
    assert_eq!(second_text.lines().count(), 3);
    assert!(second_text.contains("\"path\":\"late\""));
    assert!(second_text.contains("\"event\":\"counter\""));
    assert!(!second_text.contains("early"));
    for line in first_text.lines().chain(second_text.lines()) {
        assert!(parse_flat_object(line).is_some(), "bad JSONL: {line}");
    }
}

#[test]
fn disabled_registry_is_a_no_op_end_to_end() {
    let r = Registry::new();
    let buffer = SharedBuffer::default();
    r.install_trace(Box::new(buffer.clone()));
    {
        let _span = SpanGuard::enter(&r, "nothing");
        r.add("c", 1);
        r.gauge("g", 1.0);
        r.observe("h", 1.0);
    }
    let snap = r.snapshot();
    assert!(snap.counters.is_empty() && snap.spans.is_empty());
    assert_eq!(profile_table(&snap), "(no observability data recorded)\n");
    // The disabled span never produced trace events.
    r.finish_trace();
    assert!(buffer.0.lock().unwrap().is_empty());
}
