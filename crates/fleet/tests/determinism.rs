//! Fleet determinism and artifact-claim property tests.
//!
//! The fleet's headline guarantees, checked end to end:
//!
//! * every routing policy produces bitwise-identical shard assignments
//!   and reports across repeated runs (the router-determinism property
//!   behind the snapshot-pinned `reproduce fleet` artifact);
//! * the rendered sweep is byte-identical at any `--jobs` level;
//! * network-affinity routing beats round-robin on batch-merge rate;
//! * the reactive autoscaler lowers joules/request at low load.

use pixel_core::config::{AcceleratorConfig, Design};
use pixel_core::model::EvalContext;
use pixel_core::sweep::SweepEngine;
use pixel_fleet::sweep::{fleet_sweep, metrics_jsonl, render_fleet, FleetSweepSpec};
use pixel_fleet::{simulate_fleet, AutoscaleConfig, FleetConfig, RouteKind};
use pixel_serve::arrivals::Workload;
use pixel_serve::saturation::reference_capacity;
use pixel_units::Time;

fn oo_fleet(count: usize) -> Vec<AcceleratorConfig> {
    vec![AcceleratorConfig::new(Design::Oo, 4, 16); count]
}

fn fleet_capacity(ctx: &EvalContext, workload: &Workload, shards: &[AcceleratorConfig]) -> f64 {
    shards
        .iter()
        .map(|accel| reference_capacity(ctx, workload, accel, 8))
        .sum()
}

#[test]
fn every_policy_is_bitwise_deterministic_across_runs_and_seeds() {
    let workload = Workload::paper_mix();
    let ctx = EvalContext::new();
    let shards = oo_fleet(3);
    let rate = fleet_capacity(&ctx, &workload, &shards) * 0.9;
    for policy in RouteKind::ALL {
        for seed in [11, 2026, 777] {
            let config = FleetConfig::new(shards.clone(), policy, rate, 600, seed);
            let a = simulate_fleet(&workload, &ctx, &config);
            let b = simulate_fleet(&workload, &ctx, &config);
            assert_eq!(
                a.assignments,
                b.assignments,
                "{} seed {seed}: assignments drifted",
                policy.label()
            );
            assert_eq!(
                a.report,
                b.report,
                "{} seed {seed}: report drifted",
                policy.label()
            );
            assert_eq!(a.assignments.len(), 600);
            // Requests are conserved: completed + shed = generated.
            assert_eq!(
                a.report.completed + a.report.router_shed + a.report.shard_shed,
                600,
                "{} seed {seed}: request leak",
                policy.label()
            );
        }
    }
}

#[test]
fn seed_changes_the_trajectory() {
    let workload = Workload::paper_mix();
    let ctx = EvalContext::new();
    let shards = oo_fleet(3);
    let rate = fleet_capacity(&ctx, &workload, &shards) * 0.9;
    let run = |seed| {
        let config = FleetConfig::new(shards.clone(), RouteKind::ShortestQueue, rate, 600, seed);
        simulate_fleet(&workload, &ctx, &config)
    };
    assert_ne!(run(11).assignments, run(12).assignments);
}

#[test]
fn sweep_artifact_is_jobs_invariant() {
    let spec = FleetSweepSpec::quick(2026);
    let serial = fleet_sweep(&SweepEngine::new(1), &spec);
    let parallel = fleet_sweep(&SweepEngine::new(4), &spec);
    assert_eq!(
        render_fleet(&spec, &serial),
        render_fleet(&spec, &parallel),
        "rendered artifact differs across --jobs"
    );
    assert_eq!(
        metrics_jsonl(&spec, &serial),
        metrics_jsonl(&spec, &parallel),
        "metrics stream differs across --jobs"
    );
}

#[test]
fn network_affinity_beats_round_robin_on_merge_rate() {
    let workload = Workload::paper_mix();
    let ctx = EvalContext::new();
    let shards = oo_fleet(4);
    let rate = fleet_capacity(&ctx, &workload, &shards) * 0.85;
    let run = |route| {
        let config = FleetConfig::new(shards.clone(), route, rate, 1200, 2026);
        simulate_fleet(&workload, &ctx, &config).report
    };
    let affinity = run(RouteKind::NetworkAffinity);
    let spray = run(RouteKind::RoundRobin);
    assert!(
        affinity.merge_rate() > spray.merge_rate(),
        "affinity merge {:.3} should beat round-robin {:.3}",
        affinity.merge_rate(),
        spray.merge_rate()
    );
}

#[test]
fn autoscaler_cuts_energy_per_request_at_low_load() {
    let workload = Workload::paper_mix();
    let ctx = EvalContext::new();
    let shards = oo_fleet(4);
    let rate = fleet_capacity(&ctx, &workload, &shards) * 0.25;
    let run = |autoscale| {
        let mut config =
            FleetConfig::new(shards.clone(), RouteKind::NetworkAffinity, rate, 900, 2026);
        config.autoscale = autoscale;
        simulate_fleet(&workload, &ctx, &config).report
    };
    let fixed = run(AutoscaleConfig::disabled());
    let scaled = run(AutoscaleConfig::reactive(Time::new(15.0)));
    assert!(
        scaled.mean_active < fixed.mean_active,
        "shards were drained"
    );
    assert!(
        scaled.energy_per_inference < fixed.energy_per_inference,
        "scaled {:.3} mJ/inf should undercut fixed {:.3} mJ/inf",
        scaled.energy_per_inference.as_millijoules(),
        fixed.energy_per_inference.as_millijoules()
    );
    // Both serve everything at this load — the saving is not bought
    // with shed traffic.
    assert_eq!(
        scaled.completed + scaled.router_shed + scaled.shard_shed,
        900
    );
    assert!(scaled.drop_rate() < 0.01, "scaler shed traffic");
}

#[test]
fn heterogeneous_fleet_serves_and_balances() {
    let workload = Workload::paper_mix();
    let ctx = EvalContext::new();
    let shards: Vec<AcceleratorConfig> = [Design::Ee, Design::Oe, Design::Oo]
        .iter()
        .map(|&d| AcceleratorConfig::new(d, 4, 16))
        .collect();
    let rate = fleet_capacity(&ctx, &workload, &shards) * 0.8;
    let config = FleetConfig::new(shards, RouteKind::ShortestQueue, rate, 900, 7);
    let outcome = simulate_fleet(&workload, &ctx, &config);
    assert_eq!(outcome.report.shard_count, 3);
    assert!(
        outcome.report.goodput_ratio() > 0.97,
        "under-capacity fleet keeps up"
    );
    for shard in &outcome.report.shards {
        assert!(shard.routed > 0, "shard {} starved", shard.id);
    }
}
