//! The fleet discrete-event loop: one router, N shard machines.
//!
//! A single seeded arrival stream feeds the router; the router's SLO
//! admission gate ([`crate::slo::AdmissionControl`]) decides *whether*
//! to take each request and the [`RoutePolicy`](crate::route::RoutePolicy)
//! decides *where*. Each
//! shard then runs the exact single-fabric serving semantics of
//! [`pixel_serve::machine::ServeMachine`] on its own clock, while the
//! fleet loop advances event to event across all shards:
//!
//! 1. **Immediate actions** (zero virtual time), ascending shard id:
//!    power a drained-and-empty shard off, dispatch on any idle shard
//!    whose batching policy says go, flush partial batches once the
//!    arrival stream ends.
//! 2. **The earliest timed event**, with a fixed class order breaking
//!    time ties (completions, then wake-ends, then batching deadlines,
//!    then autoscaler ticks, then arrivals) and shard id breaking ties
//!    within a class.
//!
//! Both phases are pure functions of the shard states, so the whole
//! trajectory — shard assignments included — is a pure function of
//! `(workload, context overrides, config)`: bitwise identical across
//! runs, machines, and `--jobs` levels.

use crate::autoscale::{self, AutoscaleConfig, ScaleAction};
use crate::report::FleetReport;
use crate::route::{RouteKind, ShardView};
use crate::shard::{PowerState, Shard, ShardOutcome};
use crate::slo::{AdmissionControl, TenantSlo};
use pixel_core::config::AcceleratorConfig;
use pixel_core::model::EvalContext;
use pixel_serve::arrivals::{RequestSource, Workload};
use pixel_serve::batching::{BatchPolicy, Decision};
use pixel_serve::machine::MachineConfig;
use pixel_serve::queue::ShedPolicy;
use pixel_units::{Time, VirtInstant};

/// Parameters of one fleet simulation.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetConfig {
    /// The shard fabrics, by shard id (homogeneous or mixed designs).
    pub shards: Vec<AcceleratorConfig>,
    /// Routing policy.
    pub route: RouteKind,
    /// Batch-formation policy (shared by every shard).
    pub policy: BatchPolicy,
    /// Per-shard admission-queue bound.
    pub queue_capacity: usize,
    /// Per-shard shedding policy.
    pub shed: ShedPolicy,
    /// Per-tenant SLOs, in workload tenant order.
    pub slos: Vec<TenantSlo>,
    /// Autoscaler parameters.
    pub autoscale: AutoscaleConfig,
    /// Offered arrival rate \[requests/s\].
    pub rate_hz: f64,
    /// Arrivals to generate before draining.
    pub requests: usize,
    /// Seed of the arrival process (and the router's sample stream).
    pub seed: u64,
    /// Nominal bin count of the fleet-wide windowed grid.
    pub window_bins: usize,
}

impl FleetConfig {
    /// A fleet with the artifact defaults: greedy dynamic batching up
    /// to 8, 256-deep drop-newest shard queues, the paper SLO set,
    /// autoscaling off, a 64-bin metrics grid.
    #[must_use]
    pub fn new(
        shards: Vec<AcceleratorConfig>,
        route: RouteKind,
        rate_hz: f64,
        requests: usize,
        seed: u64,
    ) -> Self {
        Self {
            shards,
            route,
            policy: BatchPolicy::Dynamic {
                max_size: 8,
                deadline: Time::ZERO,
            },
            queue_capacity: 256,
            shed: ShedPolicy::DropNewest,
            slos: crate::slo::paper_slos(),
            autoscale: AutoscaleConfig::disabled(),
            rate_hz,
            requests,
            seed,
            window_bins: 64,
        }
    }

    /// The shared per-shard [`MachineConfig`]: every shard gets the
    /// same window base width (sized to the *fleet* expected makespan)
    /// so the per-shard series merge bin-exactly.
    #[must_use]
    pub fn machine_config(&self, workload: &Workload) -> MachineConfig {
        let window_bins = self.window_bins.max(2);
        #[allow(clippy::cast_precision_loss)]
        let expected_makespan = self.requests as f64 / self.rate_hz;
        #[allow(clippy::cast_precision_loss)]
        let base_width = (expected_makespan / window_bins as f64).max(1e-9);
        MachineConfig {
            policy: self.policy,
            queue_capacity: self.queue_capacity,
            shed: self.shed,
            window_width: Time::new(base_width),
            window_max_bins: window_bins * 2,
            event_capacity: 0,
            tenants: workload.tenants().len(),
            networks: workload.networks().len(),
        }
    }
}

/// A finished fleet run: the report plus the per-request shard
/// assignments (`-1` = rejected at the router), in arrival order —
/// what the router-determinism property test compares bitwise.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetOutcome {
    /// Aggregated fleet measurements.
    pub report: FleetReport,
    /// Shard id per generated request, `-1` for router-shed.
    pub assignments: Vec<i32>,
}

/// The next timed event, ordered by `(time, class, shard)`.
#[derive(Debug, Clone, Copy, PartialEq)]
struct TimedEvent {
    at: VirtInstant,
    class: u8,
    shard: usize,
}

const CLASS_COMPLETION: u8 = 0;
const CLASS_WAKE_END: u8 = 1;
const CLASS_DEADLINE: u8 = 2;
const CLASS_TICK: u8 = 3;
const CLASS_ARRIVAL: u8 = 4;

/// Runs one fleet simulation to completion (all arrivals generated,
/// every shard drained) and reports the measurements plus the routing
/// trace.
///
/// # Panics
///
/// Panics if the config has no shards, no requests, or an SLO list
/// that does not match the workload's tenants.
#[must_use]
pub fn simulate_fleet(
    workload: &Workload,
    ctx: &EvalContext,
    config: &FleetConfig,
) -> FleetOutcome {
    let _span = pixel_obs::span("fleet/sim");
    assert!(
        !config.shards.is_empty(),
        "a fleet needs at least one shard"
    );
    assert!(config.requests > 0, "need at least one request");
    assert_eq!(
        config.slos.len(),
        workload.tenants().len(),
        "one SLO per workload tenant"
    );
    let machine_config = config.machine_config(workload);
    // Every shard starts powered — the warm, fixed-provisioning state.
    // An enabled autoscaler earns its savings by *draining* idle shards
    // from the first tick onward; cold-starting at `min_active` would
    // instead measure wake latency against a burst the baseline never
    // faces (and shed traffic doing it).
    let mut shards: Vec<Shard> = config
        .shards
        .iter()
        .enumerate()
        .map(|(id, &accel)| Shard::new(id, ctx, workload, accel, &machine_config, true))
        .collect();
    let mut router = config.route.build(
        config.seed ^ 0x9E37_79B9_7F4A_7C15,
        workload.networks().len(),
    );
    let mut admission = AdmissionControl::new(&config.slos);
    let mut source =
        RequestSource::new(workload, config.rate_hz, config.requests, config.seed).peekable();
    let mut assignments: Vec<i32> = Vec::with_capacity(config.requests);
    let mut next_tick = config
        .autoscale
        .enabled
        .then(|| VirtInstant::EPOCH + config.autoscale.interval);
    let mut frontier = VirtInstant::EPOCH;

    'event_loop: loop {
        // Phase 1: immediate actions, ascending shard id; restart the
        // phase after each action so ordering stays canonical.
        'immediate: loop {
            for shard in &mut shards {
                if shard.try_power_off(frontier, config.autoscale.drain_latency) {
                    continue 'immediate;
                }
                if !shard.can_serve() || shard.is_busy() || shard.queue_is_empty() {
                    continue;
                }
                match shard.decide() {
                    Decision::Dispatch => {
                        shard.dispatch();
                        continue 'immediate;
                    }
                    // A deadline still pending is a timed event; but once
                    // no more work can arrive (stream drained, or the
                    // shard is draining), flush the partial batch now.
                    Decision::Hold | Decision::HoldUntil(_)
                        if source.peek().is_none() || shard.state() == PowerState::Draining =>
                    {
                        shard.dispatch();
                        continue 'immediate;
                    }
                    Decision::Hold | Decision::HoldUntil(_) => {}
                }
            }
            break;
        }

        // Phase 2: find the earliest timed event.
        let mut next: Option<TimedEvent> = None;
        let mut consider = |candidate: TimedEvent| {
            let better = match next {
                None => true,
                Some(best) => {
                    (candidate.at, candidate.class, candidate.shard)
                        < (best.at, best.class, best.shard)
                }
            };
            if better {
                next = Some(candidate);
            }
        };
        let mut work_remains = source.peek().is_some();
        for shard in &shards {
            if let Some(at) = shard.planned_completion() {
                consider(TimedEvent {
                    at,
                    class: CLASS_COMPLETION,
                    shard: shard.id(),
                });
            }
            if let PowerState::Waking { until } = shard.state() {
                consider(TimedEvent {
                    at: until,
                    class: CLASS_WAKE_END,
                    shard: shard.id(),
                });
            }
            if shard.can_serve() && !shard.is_busy() && !shard.queue_is_empty() {
                if let Decision::HoldUntil(expiry) = shard.decide() {
                    consider(TimedEvent {
                        at: expiry,
                        class: CLASS_DEADLINE,
                        shard: shard.id(),
                    });
                }
            }
            if !shard.queue_is_empty() || shard.is_busy() {
                work_remains = true;
            }
        }
        if work_remains {
            if let Some(at) = next_tick {
                consider(TimedEvent {
                    at,
                    class: CLASS_TICK,
                    shard: 0,
                });
            }
        }
        if let Some(request) = source.peek() {
            consider(TimedEvent {
                at: request.arrival,
                class: CLASS_ARRIVAL,
                shard: 0,
            });
        }
        let Some(event) = next else {
            break 'event_loop;
        };
        frontier = frontier.max(event.at);
        match event.class {
            CLASS_COMPLETION => shards[event.shard].complete(),
            CLASS_WAKE_END => shards[event.shard].finish_wake(),
            CLASS_DEADLINE => {
                shards[event.shard].advance_to(event.at);
                shards[event.shard].dispatch();
            }
            CLASS_TICK => {
                let views = shard_views(&shards);
                match autoscale::decide(&config.autoscale, &views) {
                    ScaleAction::Wake(id) => {
                        shards[id].wake(event.at, config.autoscale.wake_latency);
                    }
                    ScaleAction::Drain(id) => shards[id].begin_drain(),
                    ScaleAction::Hold => {}
                }
                next_tick = Some(event.at + config.autoscale.interval);
            }
            _ => {
                // lint:allow(P002) the arrival event class is only proposed off a non-empty peek
                let request = source.next().expect("peeked arrival");
                pixel_obs::add("fleet.arrivals", 1);
                let views = shard_views(&shards);
                let pressure = fleet_pressure(&views, config.queue_capacity);
                if admission.admit(request.tenant, pressure) {
                    let target = router.route(&request, &views);
                    assert!(
                        views[target].routable,
                        "policy routed to an unroutable shard"
                    );
                    #[allow(clippy::cast_possible_truncation, clippy::cast_possible_wrap)]
                    assignments.push(target as i32);
                    let _ = shards[target].admit(request);
                } else {
                    pixel_obs::add("fleet.router_shed", 1);
                    assignments.push(-1);
                }
            }
        }
    }

    // Close every power ledger at the fleet's end-of-run instant and
    // finish the shard machines.
    let fleet_end = shards
        .iter()
        .map(Shard::now)
        .fold(frontier, VirtInstant::max);
    for shard in &mut shards {
        shard.close(fleet_end);
    }
    let outcomes: Vec<ShardOutcome> = shards
        .into_iter()
        .map(|shard| {
            let share = offered_share(config.rate_hz, shard.routed(), config.requests);
            shard.finish(workload, share)
        })
        .collect();
    let report = FleetReport::assemble(
        workload,
        &config.slos,
        config.route.label(),
        config.rate_hz,
        config.requests as u64,
        admission.shed(),
        Time::new(fleet_end.as_secs()),
        &outcomes,
    );
    debug_assert_eq!(
        report.completed + report.router_shed + report.shard_shed,
        report.arrivals,
        "request conservation"
    );
    FleetOutcome {
        report,
        assignments,
    }
}

/// Router-visible snapshots, ascending shard id.
fn shard_views(shards: &[Shard]) -> Vec<ShardView> {
    shards
        .iter()
        .map(|s| ShardView {
            id: s.id(),
            routable: s.is_routable(),
            waking: matches!(s.state(), PowerState::Waking { .. }),
            off: s.state() == PowerState::Off,
            queue_depth: s.queue_depth(),
            busy: s.is_busy(),
        })
        .collect()
}

/// Aggregate queue pressure over the routable shards, in `[0, 1]`.
fn fleet_pressure(views: &[ShardView], queue_capacity: usize) -> f64 {
    let routable = views.iter().filter(|v| v.routable);
    let (depth, slots) = routable.fold((0usize, 0usize), |(d, s), v| {
        (d + v.queue_depth, s + queue_capacity)
    });
    if slots == 0 {
        return 1.0;
    }
    #[allow(clippy::cast_precision_loss)]
    {
        (depth as f64 / slots as f64).min(1.0)
    }
}

/// The slice of the fleet's offered rate a shard actually saw.
fn offered_share(rate_hz: f64, routed: u64, total: usize) -> f64 {
    #[allow(clippy::cast_precision_loss)]
    {
        rate_hz * routed as f64 / (total as f64).max(1.0)
    }
}
