//! The `reproduce fleet` artifact: policy × shard-count × tenant-mix.
//!
//! Three studies share one seeded arrival process (common random
//! numbers, exactly like the single-fabric saturation sweep):
//!
//! 1. **Scaling/policy grid** — homogeneous OO fleets of 1/2/4 shards
//!    under the paper mix and a network-skewed mix, each routing policy
//!    swept over offered load as a fraction of the *fleet* reference
//!    capacity (the sum of per-shard capacities). This is where the
//!    knee shift and the round-robin-vs-affinity batch-merge gap show.
//! 2. **Heterogeneous fleet** — one EE, one OE, one OO shard behind the
//!    same router, probing policies that must balance *unequal* shards.
//! 3. **Energy study** — a 4-shard OO fleet at low load with the
//!    reactive autoscaler off vs on: joules/request against the static
//!    laser/heater floor, wake/drain transitions charged.
//!
//! Every point is an independent deterministic simulation dispatched
//! through [`SweepEngine::map`], so the rendered artifact is bitwise
//! identical at any `--jobs` level.

use crate::autoscale::AutoscaleConfig;
use crate::report::FleetReport;
use crate::route::RouteKind;
use crate::sim::{simulate_fleet, FleetConfig};
use pixel_core::config::{AcceleratorConfig, Design};
use pixel_core::sweep::SweepEngine;
use pixel_dnn::mix::NetworkMix;
use pixel_dnn::zoo;
use pixel_serve::arrivals::{Tenant, Workload};
use pixel_serve::saturation::reference_capacity;
use pixel_units::Time;

/// Parameters of a fleet sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetSweepSpec {
    /// Lanes per OMAC.
    pub lanes: usize,
    /// Bits per lane.
    pub bits_per_lane: u32,
    /// Homogeneous-OO fleet sizes to sweep.
    pub shard_counts: Vec<usize>,
    /// Routing policies to sweep (single-shard fleets collapse to
    /// round-robin — every policy is identical with one shard).
    pub policies: Vec<RouteKind>,
    /// Offered loads, as fractions of the fleet reference capacity.
    pub loads: Vec<f64>,
    /// The load at which merge rates and per-tenant SLOs are read out.
    pub nominal: f64,
    /// Low loads for the autoscaler energy study.
    pub energy_loads: Vec<f64>,
    /// Autoscaler tick interval for the energy study.
    pub scaler_interval: Time,
    /// Arrivals per simulation point.
    pub requests: usize,
    /// Per-shard admission-queue bound.
    pub queue_capacity: usize,
    /// Seed of the arrival process (shared by every point).
    pub seed: u64,
}

impl FleetSweepSpec {
    /// The artifact grid: 4-lane/16-bit fabrics, fleets of 1/2/4 OO
    /// shards plus one heterogeneous fleet, all four policies, loads
    /// from 70 % to 115 % of fleet capacity.
    #[must_use]
    pub fn artifact(seed: u64) -> Self {
        Self {
            lanes: 4,
            bits_per_lane: 16,
            shard_counts: vec![1, 2, 4],
            policies: RouteKind::ALL.to_vec(),
            loads: vec![0.70, 0.85, 1.00, 1.15],
            nominal: 0.85,
            energy_loads: vec![0.25, 0.45],
            scaler_interval: Time::new(15.0),
            requests: 1600,
            queue_capacity: 256,
            seed,
        }
    }

    /// A cut-down grid for CI smoke runs: one fleet size, two loads,
    /// one energy point, ~5× fewer arrivals.
    #[must_use]
    pub fn quick(seed: u64) -> Self {
        Self {
            shard_counts: vec![2],
            loads: vec![0.85, 1.10],
            energy_loads: vec![0.30],
            requests: 320,
            ..Self::artifact(seed)
        }
    }
}

/// A tenant mix with long same-network runs: each tenant concentrates
/// on one or two CNNs, so head-of-line merging has real runs to win —
/// the regime where routing policy moves the merge rate most.
#[must_use]
pub fn skewed_mix() -> Workload {
    let networks = zoo::all_networks();
    let tenants = vec![
        Tenant {
            name: "vision-api".to_owned(),
            weight: 0.55,
            mix: NetworkMix::new("vision-api", &[(0, 0.85), (3, 0.15)]),
        },
        Tenant {
            name: "mobile".to_owned(),
            weight: 0.35,
            mix: NetworkMix::new("mobile", &[(4, 0.90), (1, 0.10)]),
        },
        Tenant {
            name: "batch-lab".to_owned(),
            weight: 0.10,
            mix: NetworkMix::new("batch-lab", &[(2, 0.5), (5, 0.5)]),
        },
    ];
    Workload::new(networks, tenants)
}

/// One measured `(policy, load)` point.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetPoint {
    /// Routing policy.
    pub policy: RouteKind,
    /// Offered load as a fraction of the fleet reference capacity.
    pub load: f64,
    /// The simulation's measurements.
    pub report: FleetReport,
}

/// One sweep section: a fixed fleet and mix, policies × loads.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetSection {
    /// Section heading.
    pub title: String,
    /// Mix tag (`paper` or `skewed`).
    pub mix: String,
    /// Fleet composition tag (e.g. `2xOO`, `EE+OE+OO`).
    pub shard_label: String,
    /// Fleet reference capacity \[inferences/s\].
    pub capacity_hz: f64,
    /// Policies swept in this section, in order.
    pub policies: Vec<RouteKind>,
    /// One point per `(policy, load)`, loads fastest.
    pub points: Vec<FleetPoint>,
}

impl FleetSection {
    /// The section's points for one policy, in load order.
    #[must_use]
    pub fn curve(&self, policy: RouteKind) -> Vec<&FleetPoint> {
        self.points.iter().filter(|p| p.policy == policy).collect()
    }

    /// First swept load where the policy saturates the fleet.
    #[must_use]
    pub fn knee(&self, policy: RouteKind) -> Option<f64> {
        self.curve(policy)
            .iter()
            .find(|p| fleet_saturated(&p.report))
            .map(|p| p.load)
    }

    /// The point at `(policy, load)`, if swept.
    #[must_use]
    pub fn at(&self, policy: RouteKind, load: f64) -> Option<&FleetPoint> {
        self.points
            .iter()
            .find(|p| p.policy == policy && (p.load - load).abs() < 1e-12)
    }
}

/// One energy-study point.
#[derive(Debug, Clone, PartialEq)]
pub struct EnergyPoint {
    /// Offered load as a fraction of fleet capacity.
    pub load: f64,
    /// Whether the reactive autoscaler was on.
    pub autoscaled: bool,
    /// The simulation's measurements.
    pub report: FleetReport,
}

/// The full fleet sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetSweep {
    /// Policy/scaling sections, in artifact order.
    pub sections: Vec<FleetSection>,
    /// The autoscaler energy study (4× OO, net-affinity).
    pub energy: Vec<EnergyPoint>,
}

/// Whether a fleet point counts as saturated: it sheds load anywhere
/// (router or shard queues), or completes less than 97 % of offered —
/// the same criterion as the single-fabric sweep.
#[must_use]
pub fn fleet_saturated(report: &FleetReport) -> bool {
    report.drop_rate() > 0.001 || report.goodput_ratio() < 0.97
}

/// One planned simulation point.
struct Plan {
    section: usize,
    workload: usize,
    policy: RouteKind,
    load: f64,
    config: FleetConfig,
}

/// Runs the full fleet sweep through the engine.
#[must_use]
pub fn fleet_sweep(engine: &SweepEngine, spec: &FleetSweepSpec) -> FleetSweep {
    let _span = pixel_obs::span("fleet/sweep");
    let workloads = [Workload::paper_mix(), skewed_mix()];
    let oo = AcceleratorConfig::new(Design::Oo, spec.lanes, spec.bits_per_lane);
    let max_batch = FleetConfig::new(vec![oo], RouteKind::RoundRobin, 1.0, 1, 0)
        .policy
        .max_batch();
    let fleet_capacity = |workload: &Workload, shards: &[AcceleratorConfig]| -> f64 {
        shards
            .iter()
            .map(|accel| reference_capacity(engine.ctx(), workload, accel, max_batch))
            .sum()
    };

    let mut sections: Vec<FleetSection> = Vec::new();
    let mut plans: Vec<Plan> = Vec::new();
    let plan_section = |sections: &mut Vec<FleetSection>,
                        plans: &mut Vec<Plan>,
                        mix: &str,
                        workload_id: usize,
                        shard_label: &str,
                        shards: Vec<AcceleratorConfig>,
                        policies: Vec<RouteKind>| {
        let capacity = fleet_capacity(&workloads[workload_id], &shards);
        let section = sections.len();
        for &policy in &policies {
            for &load in &spec.loads {
                let mut config = FleetConfig::new(
                    shards.clone(),
                    policy,
                    capacity * load,
                    spec.requests,
                    spec.seed,
                );
                config.queue_capacity = spec.queue_capacity;
                plans.push(Plan {
                    section,
                    workload: workload_id,
                    policy,
                    load,
                    config,
                });
            }
        }
        sections.push(FleetSection {
            title: format!("{mix} mix — {shard_label}"),
            mix: mix.to_owned(),
            shard_label: shard_label.to_owned(),
            capacity_hz: capacity,
            policies,
            points: Vec::new(),
        });
    };

    for (workload_id, mix) in [(0, "paper"), (1, "skewed")] {
        for &count in &spec.shard_counts {
            let shards = vec![oo; count];
            let policies = if count == 1 {
                vec![RouteKind::RoundRobin]
            } else {
                spec.policies.clone()
            };
            plan_section(
                &mut sections,
                &mut plans,
                mix,
                workload_id,
                &format!("{count}xOO"),
                shards,
                policies,
            );
        }
    }
    let hetero: Vec<AcceleratorConfig> = [Design::Ee, Design::Oe, Design::Oo]
        .iter()
        .map(|&d| AcceleratorConfig::new(d, spec.lanes, spec.bits_per_lane))
        .collect();
    plan_section(
        &mut sections,
        &mut plans,
        "paper",
        0,
        "EE+OE+OO",
        hetero,
        spec.policies.clone(),
    );

    let reports = engine.map(&plans, |ctx, plan| {
        simulate_fleet(&workloads[plan.workload], ctx, &plan.config).report
    });
    for (plan, report) in plans.iter().zip(reports) {
        sections[plan.section].points.push(FleetPoint {
            policy: plan.policy,
            load: plan.load,
            report,
        });
    }

    // Energy study: 4× OO under net-affinity at low load, scaler off/on.
    let shards = vec![oo; 4];
    let capacity = fleet_capacity(&workloads[0], &shards);
    let energy_plans: Vec<(f64, bool, FleetConfig)> = spec
        .energy_loads
        .iter()
        .flat_map(|&load| {
            [false, true].map(|autoscaled| {
                let mut config = FleetConfig::new(
                    shards.clone(),
                    RouteKind::NetworkAffinity,
                    capacity * load,
                    spec.requests,
                    spec.seed,
                );
                config.queue_capacity = spec.queue_capacity;
                if autoscaled {
                    config.autoscale = AutoscaleConfig::reactive(spec.scaler_interval);
                }
                (load, autoscaled, config)
            })
        })
        .collect();
    let energy_reports = engine.map(&energy_plans, |ctx, (_, _, config)| {
        simulate_fleet(&workloads[0], ctx, config).report
    });
    let energy = energy_plans
        .iter()
        .zip(energy_reports)
        .map(|(&(load, autoscaled, _), report)| EnergyPoint {
            load,
            autoscaled,
            report,
        })
        .collect();

    FleetSweep { sections, energy }
}

/// Renders the sweep as the `reproduce fleet` artifact table.
#[must_use]
pub fn render_fleet(spec: &FleetSweepSpec, sweep: &FleetSweep) -> String {
    let mut s = format!(
        "fleet sweep: policy × shard-count × tenant-mix | {} lanes, {} bits/lane | {} requests/point | seed {}\n",
        spec.lanes, spec.bits_per_lane, spec.requests, spec.seed,
    );
    let workload = Workload::paper_mix();
    let slos = crate::slo::paper_slos();
    s.push_str("SLOs: ");
    for (t, tenant) in workload.tenants().iter().enumerate() {
        if t > 0 {
            s.push_str(" | ");
        }
        s.push_str(&format!(
            "{} p99≤{:.0}s w{:.2} prio{}",
            tenant.name,
            slos[t].p99_target.value(),
            slos[t].weight,
            slos[t].priority,
        ));
    }
    s.push('\n');
    for section in &sweep.sections {
        s.push_str(&format!(
            "\n-- {} mix — {} — fleet capacity {:.1} inf/s --\n",
            section.mix, section.shard_label, section.capacity_hz,
        ));
        s.push_str(
            "policy         | load | offered[/s] achieved[/s] |  p99[ms] wait99[ms] | batch merge% | rshed% sshed% | E/inf[mJ] | SLO\n",
        );
        for point in &section.points {
            let r = &point.report;
            s.push_str(&format!(
                "{:<14} | {:>4.2} | {:>11.1} {:>12.1} | {:>8.1} {:>10.1} | {:>5.2} {:>6.1} | {:>6.2} {:>6.2} | {:>9.3} | {}/{}\n",
                point.policy.label(),
                point.load,
                r.offered_hz,
                r.achieved_hz,
                r.latency.p99.as_millis(),
                r.queue_wait.p99.as_millis(),
                r.mean_batch,
                r.merge_rate() * 100.0,
                router_shed_pct(r),
                shard_shed_pct(r),
                r.energy_per_inference.as_millijoules(),
                r.slo_attained(),
                r.tenants.len(),
            ));
        }
        s.push_str("knee:");
        for &policy in &section.policies {
            match section.knee(policy) {
                Some(load) => s.push_str(&format!(" {}={load:.2}", policy.label())),
                None => s.push_str(&format!(" {}=>grid", policy.label())),
            }
        }
        if section.policies.len() > 1 {
            if let (Some(rr), Some(aff)) = (
                section.knee(RouteKind::RoundRobin),
                section.knee(RouteKind::NetworkAffinity),
            ) {
                s.push_str(&format!(" (affinity knee shift {:+.2})", aff - rr));
            }
        }
        s.push('\n');
        if let (Some(aff), Some(rr)) = (
            section.at(RouteKind::NetworkAffinity, spec.nominal),
            section.at(RouteKind::RoundRobin, spec.nominal),
        ) {
            s.push_str(&format!(
                "merge@{:.2}: net-affinity={:.3} round-robin={:.3} (Δ {:+.3})\n",
                spec.nominal,
                aff.report.merge_rate(),
                rr.report.merge_rate(),
                aff.report.merge_rate() - rr.report.merge_rate(),
            ));
            s.push_str(&format!("p99@{:.2} [net-affinity]:", spec.nominal));
            for tenant in &aff.report.tenants {
                s.push_str(&format!(
                    " {} {:.2}s/{:.0}s {}",
                    tenant.name,
                    tenant.p99.value(),
                    tenant.slo.p99_target.value(),
                    if tenant.attained() { "ok" } else { "MISS" },
                ));
            }
            s.push('\n');
        }
    }
    s.push_str("\n-- energy — 4xOO, net-affinity, reactive autoscaler --\n");
    s.push_str("load | scaler |  E/inf[mJ] | mean-active | wakes drains | static[J] dynamic[J]\n");
    for point in &sweep.energy {
        let r = &point.report;
        s.push_str(&format!(
            "{:>4.2} | {:>6} | {:>10.3} | {:>11.2} | {:>5} {:>6} | {:>9.2} {:>10.4}\n",
            point.load,
            if point.autoscaled { "on" } else { "off" },
            r.energy_per_inference.as_millijoules(),
            r.mean_active,
            r.wakes,
            r.drains,
            r.static_energy.value(),
            r.dynamic_energy.value(),
        ));
    }
    for &load in &spec.energy_loads {
        let at = |autoscaled: bool| {
            sweep
                .energy
                .iter()
                .find(|p| p.autoscaled == autoscaled && (p.load - load).abs() < 1e-12)
        };
        if let (Some(off), Some(on)) = (at(false), at(true)) {
            let (off_mj, on_mj) = (
                off.report.energy_per_inference.as_millijoules(),
                on.report.energy_per_inference.as_millijoules(),
            );
            s.push_str(&format!(
                "savings@{load:.2}: scaler on {on_mj:.3} mJ/inf vs off {off_mj:.3} ({:+.1}%)\n",
                (on_mj / off_mj - 1.0) * 100.0,
            ));
        }
    }
    s
}

fn router_shed_pct(report: &FleetReport) -> f64 {
    #[allow(clippy::cast_precision_loss)]
    {
        report.router_shed as f64 / (report.arrivals as f64).max(1.0) * 100.0
    }
}

fn shard_shed_pct(report: &FleetReport) -> f64 {
    #[allow(clippy::cast_precision_loss)]
    {
        report.shard_shed as f64 / (report.arrivals as f64).max(1.0) * 100.0
    }
}

/// Renders the sweep as machine-readable JSONL: one `pixel.fleet.meta`
/// header, one `pixel.fleet.point` line per `(section, policy, load)`,
/// per-tenant lines at the nominal load, and `pixel.fleet.energy` lines
/// for the autoscaler study. Flat objects on the virtual clock: bitwise
/// identical across runs and `--jobs` levels.
#[must_use]
pub fn metrics_jsonl(spec: &FleetSweepSpec, sweep: &FleetSweep) -> String {
    let mut s = format!(
        "{{\"schema\":\"pixel.fleet.meta\",\"lanes\":{},\"bits_per_lane\":{},\"requests\":{},\"queue\":{},\"nominal\":{},\"seed\":{}}}\n",
        spec.lanes, spec.bits_per_lane, spec.requests, spec.queue_capacity, spec.nominal, spec.seed,
    );
    for section in &sweep.sections {
        for point in &section.points {
            let r = &point.report;
            s.push_str(&format!(
                "{{\"schema\":\"pixel.fleet.point\",\"mix\":\"{}\",\"fleet\":\"{}\",\"policy\":\"{}\",\"load\":{},\"offered_hz\":{},\"achieved_hz\":{},\"completed\":{},\"router_shed\":{},\"shard_shed\":{},\"p99_ms\":{},\"wait_p99_ms\":{},\"mean_batch\":{},\"merge_rate\":{},\"utilization\":{},\"energy_per_inf_mj\":{},\"slo_attained\":{}}}\n",
                section.mix,
                section.shard_label,
                point.policy.label(),
                point.load,
                r.offered_hz,
                r.achieved_hz,
                r.completed,
                r.router_shed,
                r.shard_shed,
                r.latency.p99.as_millis(),
                r.queue_wait.p99.as_millis(),
                r.mean_batch,
                r.merge_rate(),
                r.utilization,
                r.energy_per_inference.as_millijoules(),
                r.slo_attained(),
            ));
            if (point.load - spec.nominal).abs() < 1e-12 {
                for tenant in &r.tenants {
                    s.push_str(&format!(
                        "{{\"schema\":\"pixel.fleet.tenant\",\"mix\":\"{}\",\"fleet\":\"{}\",\"policy\":\"{}\",\"load\":{},\"tenant\":\"{}\",\"completed\":{},\"router_shed\":{},\"p99_ms\":{},\"target_ms\":{},\"attained\":{}}}\n",
                        section.mix,
                        section.shard_label,
                        point.policy.label(),
                        point.load,
                        tenant.name,
                        tenant.completed,
                        tenant.router_shed,
                        tenant.p99.as_millis(),
                        tenant.slo.p99_target.as_millis(),
                        tenant.attained(),
                    ));
                }
            }
        }
    }
    for point in &sweep.energy {
        let r = &point.report;
        s.push_str(&format!(
            "{{\"schema\":\"pixel.fleet.energy\",\"load\":{},\"autoscaled\":{},\"energy_per_inf_mj\":{},\"mean_active\":{},\"wakes\":{},\"drains\":{},\"static_j\":{},\"dynamic_j\":{}}}\n",
            point.load,
            point.autoscaled,
            r.energy_per_inference.as_millijoules(),
            r.mean_active,
            r.wakes,
            r.drains,
            r.static_energy.value(),
            r.dynamic_energy.value(),
        ));
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_sweep() -> FleetSweep {
        let engine = SweepEngine::new(2);
        fleet_sweep(&engine, &FleetSweepSpec::quick(2026))
    }

    #[test]
    fn quick_sweep_has_expected_shape() {
        let sweep = small_sweep();
        // paper 2xOO, skewed 2xOO, hetero.
        assert_eq!(sweep.sections.len(), 3);
        for section in &sweep.sections {
            assert_eq!(section.points.len(), section.policies.len() * 2);
            assert!(section.capacity_hz > 0.0, "{}", section.title);
        }
        assert_eq!(sweep.energy.len(), 2);
    }

    #[test]
    fn every_point_conserves_requests() {
        let sweep = small_sweep();
        let all = sweep
            .sections
            .iter()
            .flat_map(|s| s.points.iter().map(|p| &p.report))
            .chain(sweep.energy.iter().map(|p| &p.report));
        for report in all {
            assert_eq!(
                report.completed + report.router_shed + report.shard_shed,
                report.arrivals,
                "{} leak",
                report.policy,
            );
        }
    }

    #[test]
    fn render_carries_knee_merge_and_energy_readouts() {
        let spec = FleetSweepSpec::quick(2026);
        let engine = SweepEngine::new(2);
        let sweep = fleet_sweep(&engine, &spec);
        let text = render_fleet(&spec, &sweep);
        for label in [
            "fleet sweep",
            "SLOs:",
            "knee:",
            "merge@0.85",
            "net-affinity",
            "round-robin",
            "reactive autoscaler",
            "savings@0.30",
        ] {
            assert!(text.contains(label), "missing {label}:\n{text}");
        }
    }

    #[test]
    fn metrics_jsonl_is_schema_tagged_flat_json() {
        let spec = FleetSweepSpec::quick(2026);
        let engine = SweepEngine::new(1);
        let sweep = fleet_sweep(&engine, &spec);
        let jsonl = metrics_jsonl(&spec, &sweep);
        assert!(jsonl.lines().count() > sweep.sections.len());
        for line in jsonl.lines() {
            let fields = pixel_obs::parse_flat_object(line).expect("flat JSON");
            assert!(
                fields
                    .iter()
                    .any(|(k, v)| k == "schema" && v.starts_with("pixel.fleet.")),
                "untagged line: {line}"
            );
        }
    }
}
