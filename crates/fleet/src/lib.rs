//! Sharded multi-fabric serving for the PIXEL reproduction.
//!
//! `pixel-fleet` scales the single-fabric serving model of
//! [`pixel_serve`] out to a fleet: N shards — each a full
//! [`ServeMachine`](pixel_serve::machine::ServeMachine) over its own
//! design backend (homogeneous, or mixed EE/OE/OO) — behind a router
//! with pluggable placement policies, per-tenant SLO admission, and an
//! energy-aware autoscaler that powers shards up and down against
//! PIXEL's static laser/heater floor.
//!
//! The pieces:
//!
//! * [`shard`] — one serve machine plus the power ledger that meters
//!   its static floor over *powered* time (wake stabilization and
//!   drain tails included).
//! * [`route`] — the [`RoutePolicy`] trait and the
//!   four built-ins: round-robin, join-shortest-queue,
//!   power-of-two-choices, and network-affinity (which preserves the
//!   head-of-line same-network runs PIXEL's batch merging feeds on).
//! * [`slo`] — per-tenant p99 targets plus the weighted-fair,
//!   priority-aware admission gate at the router.
//! * [`autoscale`] — the reactive watermark scaler and its honest
//!   wake/drain transition charging.
//! * [`sim`] — the fleet discrete-event loop; bitwise deterministic.
//! * [`report`] — exact aggregation (merged HDR histograms, merged
//!   window grids, split static/dynamic energy) into a
//!   [`FleetReport`].
//! * [`sweep`] — the `reproduce fleet` artifact: policy × shard-count
//!   × tenant-mix sweeps with knee, SLO-attainment, and
//!   joules-per-request readouts.

pub mod autoscale;
pub mod report;
pub mod route;
pub mod shard;
pub mod sim;
pub mod slo;
pub mod sweep;

pub use autoscale::{AutoscaleConfig, ScaleAction};
pub use report::{FleetReport, ShardStats, TenantSloStats};
pub use route::{RouteKind, RoutePolicy, ShardView};
pub use shard::{PowerState, Shard, ShardOutcome};
pub use sim::{simulate_fleet, FleetConfig, FleetOutcome};
pub use slo::{paper_slos, AdmissionControl, TenantSlo};
pub use sweep::{
    fleet_sweep, metrics_jsonl, render_fleet, skewed_mix, EnergyPoint, FleetPoint, FleetSection,
    FleetSweep, FleetSweepSpec,
};
