//! Per-tenant SLOs and pressure-gated admission at the router.
//!
//! Each tenant carries a [`TenantSlo`]: a p99 sojourn target (checked
//! against the measured per-tenant p99 at the end of the run), a
//! weighted-fair share, and a priority class. The router's
//! [`AdmissionControl`] turns those into an admission decision *before*
//! routing:
//!
//! * **Uncontended** (fleet queue pressure below the soft watermark):
//!   everything is admitted — SLOs cost nothing when the fleet keeps up.
//! * **Pressured** (soft ≤ pressure < hard): weighted-fair credits.
//!   Every pressured arrival mints one credit, split across tenants in
//!   proportion to their weights; admitting a request spends one
//!   credit. Long-run admitted throughput per tenant converges to its
//!   weight share; unused credit is capped so an idle tenant cannot
//!   bank an unbounded burst.
//! * **Critical** (pressure ≥ hard): only the highest priority class
//!   still present is admitted at all (on top of its credit), shedding
//!   best-effort traffic to protect latency-sensitive tenants.
//!
//! Deterministic by construction: credits are plain arithmetic over
//! the arrival sequence; no clocks, no randomness.

/// One tenant's serving objective.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TenantSlo {
    /// Target 99th-percentile sojourn time.
    pub p99_target: pixel_units::Time,
    /// Weighted-fair share under pressure (relative to other tenants).
    pub weight: f64,
    /// Priority class; *higher* survives the hard watermark.
    pub priority: u8,
}

/// The artifact's SLO set for [`Workload::paper_mix`]'s three tenants
/// (vision-api, mobile, batch-lab), calibrated against the committed
/// single-fabric saturation curves so attainment flips within the
/// swept load grid rather than trivially passing or failing.
///
/// [`Workload::paper_mix`]: pixel_serve::arrivals::Workload::paper_mix
#[must_use]
pub fn paper_slos() -> Vec<TenantSlo> {
    vec![
        // vision-api: latency-sensitive bulk traffic.
        TenantSlo {
            p99_target: pixel_units::Time::new(20.0),
            weight: 0.5,
            priority: 1,
        },
        // mobile: interactive, tightest target, survives overload.
        TenantSlo {
            p99_target: pixel_units::Time::new(8.0),
            weight: 0.3,
            priority: 2,
        },
        // batch-lab: best-effort research traffic.
        TenantSlo {
            p99_target: pixel_units::Time::new(120.0),
            weight: 0.2,
            priority: 0,
        },
    ]
}

/// Weighted-fair, priority-aware admission gate (see the module docs).
#[derive(Debug, Clone, PartialEq)]
pub struct AdmissionControl {
    slos: Vec<TenantSlo>,
    credits: Vec<f64>,
    weight_total: f64,
    top_priority: u8,
    shed: Vec<u64>,
}

impl AdmissionControl {
    /// Queue pressure at which weighted-fair crediting kicks in.
    pub const SOFT_PRESSURE: f64 = 0.60;
    /// Queue pressure at which only the top priority class survives.
    pub const HARD_PRESSURE: f64 = 0.90;
    /// Most credit a tenant can bank (in requests).
    const CREDIT_CAP: f64 = 8.0;

    /// An admission gate over `slos` (indexed like the workload's
    /// tenants).
    ///
    /// # Panics
    ///
    /// Panics if `slos` is empty or the weights do not sum to a
    /// positive value.
    #[must_use]
    pub fn new(slos: &[TenantSlo]) -> Self {
        assert!(!slos.is_empty(), "need at least one tenant SLO");
        let weight_total: f64 = slos.iter().map(|s| s.weight).sum();
        assert!(weight_total > 0.0, "tenant weights must sum positive");
        let top_priority = slos.iter().map(|s| s.priority).max().unwrap_or(0);
        Self {
            slos: slos.to_vec(),
            credits: vec![Self::CREDIT_CAP; slos.len()],
            weight_total,
            top_priority,
            shed: vec![0; slos.len()],
        }
    }

    /// Decides one arrival from `tenant` under the given fleet queue
    /// `pressure` (aggregate routable queue depth over aggregate
    /// routable capacity, in `[0, 1]`). Returns whether to admit;
    /// rejected requests are counted per tenant.
    pub fn admit(&mut self, tenant: usize, pressure: f64) -> bool {
        if pressure < Self::SOFT_PRESSURE {
            return true;
        }
        // Mint one credit per pressured arrival, split by weight.
        for (credit, slo) in self.credits.iter_mut().zip(&self.slos) {
            *credit = (*credit + slo.weight / self.weight_total).min(Self::CREDIT_CAP);
        }
        if pressure >= Self::HARD_PRESSURE && self.slos[tenant].priority < self.top_priority {
            self.shed[tenant] += 1;
            return false;
        }
        if self.credits[tenant] >= 1.0 {
            self.credits[tenant] -= 1.0;
            true
        } else {
            self.shed[tenant] += 1;
            false
        }
    }

    /// Requests rejected at the router, per tenant.
    #[must_use]
    pub fn shed(&self) -> &[u64] {
        &self.shed
    }

    /// Total requests rejected at the router.
    #[must_use]
    pub fn shed_total(&self) -> u64 {
        self.shed.iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uncontended_admits_everything() {
        let mut gate = AdmissionControl::new(&paper_slos());
        for tenant in [0, 1, 2, 0, 1, 2] {
            assert!(gate.admit(tenant, 0.1));
        }
        assert_eq!(gate.shed_total(), 0);
    }

    #[test]
    fn pressured_admission_tracks_weighted_fair_credit_inflow() {
        let slos = paper_slos();
        let mut gate = AdmissionControl::new(&slos);
        // A long pressured phase with arrivals round-robining over
        // tenants: each *offers* 1/3 of traffic, but credit inflow is
        // split .5/.3/.2. Tenant 0's inflow (0.5 per arrival × 3
        // arrivals/round) exceeds its demand (1/round), so it admits
        // everything; tenants 1 and 2 are credit-constrained and
        // throttle to 0.9 and 0.6 admits per round respectively.
        let rounds = 3000u64;
        let mut admitted = [0u64; 3];
        for i in 0..rounds * 3 {
            let tenant = (i % 3) as usize;
            if gate.admit(tenant, 0.7) {
                admitted[tenant] += 1;
            }
        }
        #[allow(clippy::cast_precision_loss)]
        let per_round = |t: usize| admitted[t] as f64 / rounds as f64;
        assert!(per_round(0) > 0.99, "unconstrained tenant admits all");
        assert!((per_round(1) - 0.9).abs() < 0.02, "got {}", per_round(1));
        assert!((per_round(2) - 0.6).abs() < 0.02, "got {}", per_round(2));
        // Constrained tenants split bandwidth by weight ratio.
        #[allow(clippy::cast_precision_loss)]
        let ratio = admitted[1] as f64 / admitted[2] as f64;
        assert!((ratio - 1.5).abs() < 0.05, "ratio {ratio}");
        let total: u64 = admitted.iter().sum();
        assert_eq!(
            gate.shed_total(),
            rounds * 3 - total,
            "every rejection is counted"
        );
    }

    #[test]
    fn hard_pressure_admits_only_the_top_priority_class() {
        let mut gate = AdmissionControl::new(&paper_slos());
        // Burn the initial credit grants first.
        for _ in 0..64 {
            let _ = gate.admit(0, 0.95);
            let _ = gate.admit(1, 0.95);
            let _ = gate.admit(2, 0.95);
        }
        let mut admitted = [0u64; 3];
        for _ in 0..300 {
            for (tenant, count) in admitted.iter_mut().enumerate() {
                if gate.admit(tenant, 0.95) {
                    *count += 1;
                }
            }
        }
        assert_eq!(admitted[0], 0, "priority 1 shed at the hard watermark");
        assert_eq!(admitted[2], 0, "priority 0 shed at the hard watermark");
        assert!(admitted[1] > 0, "top priority keeps flowing");
    }

    #[test]
    fn idle_tenant_credit_is_capped() {
        let mut gate = AdmissionControl::new(&paper_slos());
        // Tenant 2 idles through a long pressured phase...
        for _ in 0..10_000 {
            let _ = gate.admit(0, 0.7);
        }
        // ...then bursts: the banked backlog is bounded by the cap (≈9
        // admits), after which it throttles to its 0.2/arrival inflow.
        let mut burst = 0u64;
        for _ in 0..100 {
            if gate.admit(2, 0.7) {
                burst += 1;
            }
        }
        assert!(burst <= 30, "burst {burst}: banked credit was not capped");
        assert!(burst >= 9, "burst {burst}: the cap grant went missing");
    }
}
