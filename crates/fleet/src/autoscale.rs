//! The reactive, energy-aware autoscaler.
//!
//! PIXEL's energy story is dominated by the always-on laser/heater
//! floor: an idle optical shard burns watts doing nothing. At fleet
//! scale the lever is *how many shards are powered*: the autoscaler
//! ticks on a fixed virtual-time interval, compares the mean backlog
//! per powered shard against two watermarks, and wakes or drains one
//! shard per tick (single-step hysteresis — no flapping between
//! watermarks, no multi-shard thundering herds).
//!
//! Transitions are charged honestly (see [`crate::shard`]): a woken
//! shard burns its floor through the whole `wake_latency` stabilization
//! before serving anything, and a drained shard keeps burning until its
//! queue empties plus a `drain_latency` shutdown tail. Joules/request
//! therefore reflects the real cost of chasing load, not free
//! teleportation between power states.

use crate::route::ShardView;
use pixel_units::Time;

/// Autoscaler parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AutoscaleConfig {
    /// Master switch; disabled fleets keep every shard powered.
    pub enabled: bool,
    /// Virtual-time between scaling decisions.
    pub interval: Time,
    /// Mean backlog per powered shard above which one shard wakes.
    pub high_watermark: f64,
    /// Mean backlog per powered shard below which one shard drains.
    pub low_watermark: f64,
    /// Powered shards never drop below this count.
    pub min_active: usize,
    /// Laser/heater stabilization time charged on wake.
    pub wake_latency: Time,
    /// Shutdown tail charged after a drained shard empties.
    pub drain_latency: Time,
}

impl AutoscaleConfig {
    /// Autoscaling off: the whole fleet stays powered for the whole
    /// run (the fixed-provisioning baseline).
    #[must_use]
    pub fn disabled() -> Self {
        Self {
            enabled: false,
            interval: Time::new(1.0),
            high_watermark: f64::INFINITY,
            low_watermark: 0.0,
            min_active: 1,
            wake_latency: Time::ZERO,
            drain_latency: Time::ZERO,
        }
    }

    /// The artifact's reactive setup: tick every `interval` seconds,
    /// wake above 6 queued-or-serving requests per powered shard, drain
    /// below 2, keep one shard always powered, and pay 5 s transitions
    /// both ways. The wide hysteresis band tolerates the backlog skew
    /// that affinity routing concentrates on single shards — a snapshot
    /// burst on one shard must not re-wake a fleet the mean says is
    /// idle.
    #[must_use]
    pub fn reactive(interval: Time) -> Self {
        Self {
            enabled: true,
            interval,
            high_watermark: 6.0,
            low_watermark: 2.0,
            min_active: 1,
            wake_latency: Time::new(5.0),
            drain_latency: Time::new(5.0),
        }
    }
}

/// What one autoscaler tick decided.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScaleAction {
    /// Power shard `id` up.
    Wake(usize),
    /// Start draining shard `id`.
    Drain(usize),
    /// Leave the fleet as is.
    Hold,
}

/// One scaling decision over the fleet's current shard views.
///
/// Powered = routable (`Active` or `Waking`); draining shards are
/// already on their way out and count for neither watermark. Wakes pick
/// the lowest-id `Off` shard, drains the highest-id `Active` one
/// (deterministic tie-breaking keeps `reproduce fleet` bitwise stable).
/// One transition at a time, in either direction: while a wake is still
/// stabilizing no drain is issued, and while a drain is still emptying
/// no wake is issued — the fleet finishes one transition before
/// starting the opposite one, which stops watermark flapping from
/// paying wake latency every other tick.
#[must_use]
pub fn decide(config: &AutoscaleConfig, views: &[ShardView]) -> ScaleAction {
    if !config.enabled {
        return ScaleAction::Hold;
    }
    let powered: Vec<&ShardView> = views.iter().filter(|v| v.routable).collect();
    if powered.is_empty() {
        // All shards draining/off (cannot happen with min_active ≥ 1,
        // but a defensive wake beats a stalled fleet).
        return match views.iter().find(|v| v.off) {
            Some(v) => ScaleAction::Wake(v.id),
            None => ScaleAction::Hold,
        };
    }
    let draining = views.iter().any(|v| !v.routable && !v.off);
    let backlog: usize = powered.iter().map(|v| v.backlog()).sum();
    #[allow(clippy::cast_precision_loss)]
    let mean = backlog as f64 / powered.len() as f64;
    if mean > config.high_watermark && !draining {
        if let Some(v) = views.iter().find(|v| v.off) {
            return ScaleAction::Wake(v.id);
        }
    } else if mean < config.low_watermark
        && powered.len() > config.min_active
        && !powered.iter().any(|v| v.waking)
    {
        if let Some(v) = views.iter().rev().find(|v| v.routable && !v.waking) {
            return ScaleAction::Drain(v.id);
        }
    }
    ScaleAction::Hold
}

#[cfg(test)]
mod tests {
    use super::*;

    fn view(id: usize, routable: bool, off: bool, waking: bool, depth: usize) -> ShardView {
        ShardView {
            id,
            routable,
            waking,
            off,
            queue_depth: depth,
            busy: false,
        }
    }

    fn reactive() -> AutoscaleConfig {
        AutoscaleConfig::reactive(Time::new(10.0))
    }

    #[test]
    fn wakes_the_lowest_off_shard_above_the_high_watermark() {
        let views = vec![
            view(0, true, false, false, 9),
            view(1, false, true, false, 0),
            view(2, false, true, false, 0),
        ];
        assert_eq!(decide(&reactive(), &views), ScaleAction::Wake(1));
    }

    #[test]
    fn drains_the_highest_active_shard_below_the_low_watermark() {
        let views = vec![
            view(0, true, false, false, 0),
            view(1, true, false, false, 1),
            view(2, true, false, false, 0),
        ];
        assert_eq!(decide(&reactive(), &views), ScaleAction::Drain(2));
    }

    #[test]
    fn holds_between_watermarks_and_respects_min_active() {
        let config = reactive();
        let between = vec![
            view(0, true, false, false, 2),
            view(1, true, false, false, 3),
        ];
        assert_eq!(decide(&config, &between), ScaleAction::Hold);
        let last = vec![view(0, true, false, false, 0)];
        assert_eq!(decide(&config, &last), ScaleAction::Hold, "min_active");
    }

    #[test]
    fn no_drain_while_a_wake_is_stabilizing() {
        let views = vec![
            view(0, true, false, false, 0),
            view(1, true, false, true, 0),
        ];
        assert_eq!(decide(&reactive(), &views), ScaleAction::Hold);
    }

    #[test]
    fn disabled_always_holds() {
        let views = vec![
            view(0, true, false, false, 1000),
            view(1, false, true, false, 0),
        ];
        assert_eq!(
            decide(&AutoscaleConfig::disabled(), &views),
            ScaleAction::Hold
        );
    }
}
