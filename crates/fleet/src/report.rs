//! Fleet-level measurements: exact aggregation over shard outcomes.
//!
//! Everything here recombines *exactly* from per-shard state. Latency
//! percentiles come from merging the shards' integer-nanosecond HDR
//! histograms (exact bucket-wise merge, so the fleet p99 is the p99 of
//! the union population, not an average of averages); the windowed
//! trajectory merges bin-wise on the shared virtual-time grid (see
//! [`WindowSeries::merge`]); energy splits into the dynamic inference
//! energy the machines metered and the static floor each shard's power
//! ledger charged over its *powered* time.

use crate::shard::ShardOutcome;
use crate::slo::TenantSlo;
use pixel_core::config::Design;
use pixel_serve::arrivals::Workload;
use pixel_serve::flightrec::LatencyBreakdown;
use pixel_serve::percentile::LatencyHistogram;
use pixel_serve::report::LatencyPercentiles;
use pixel_serve::window::WindowSeries;
use pixel_units::{Energy, Time};

/// One shard's line in the fleet report.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardStats {
    /// Shard index.
    pub id: usize,
    /// The shard's design backend.
    pub design: Design,
    /// Requests the router sent this shard.
    pub routed: u64,
    /// Requests that completed here.
    pub completed: u64,
    /// Requests shed at this shard's admission queue.
    pub shed: u64,
    /// Batches dispatched.
    pub dispatches: u64,
    /// Mean dispatched batch size.
    pub mean_batch: f64,
    /// Busy time as a fraction of *powered* time.
    pub utilization: f64,
    /// Time the shard drew its static floor.
    pub powered: Time,
    /// Off → Waking transitions.
    pub wakes: u64,
    /// Active → Draining transitions.
    pub drains: u64,
    /// Dynamic inference energy metered by the machine.
    pub dynamic_energy: Energy,
    /// Static floor energy over the powered time.
    pub static_energy: Energy,
}

/// One tenant's SLO verdict.
#[derive(Debug, Clone, PartialEq)]
pub struct TenantSloStats {
    /// Tenant name.
    pub name: String,
    /// The tenant's SLO.
    pub slo: TenantSlo,
    /// Completions across the whole fleet.
    pub completed: u64,
    /// Requests rejected at the router's admission gate.
    pub router_shed: u64,
    /// Measured fleet-wide p99 sojourn (exact histogram merge).
    pub p99: Time,
}

impl TenantSloStats {
    /// Whether the tenant met its p99 target (vacuously true with no
    /// completions).
    #[must_use]
    pub fn attained(&self) -> bool {
        self.completed == 0 || self.p99 <= self.slo.p99_target
    }
}

/// Everything one fleet simulation measures.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetReport {
    /// Routing policy label.
    pub policy: String,
    /// Shards in the fleet.
    pub shard_count: usize,
    /// Offered arrival rate \[requests/s\].
    pub offered_hz: f64,
    /// Fleet-wide completion rate over the makespan.
    pub achieved_hz: f64,
    /// Requests generated.
    pub arrivals: u64,
    /// Requests that completed inference anywhere in the fleet.
    pub completed: u64,
    /// Requests rejected by the router's SLO admission gate.
    pub router_shed: u64,
    /// Requests shed at shard admission queues.
    pub shard_shed: u64,
    /// Fleet-wide sojourn percentiles (exact histogram merge).
    pub latency: LatencyPercentiles,
    /// Fleet-wide queue-wait percentiles.
    pub queue_wait: LatencyPercentiles,
    /// Fleet-wide service-time percentiles.
    pub service: LatencyPercentiles,
    /// Batches dispatched across the fleet.
    pub dispatches: u64,
    /// Mean dispatched batch size across the fleet.
    pub mean_batch: f64,
    /// First arrival to last completion, fleet-wide.
    pub makespan: Time,
    /// Busy time over powered time, fleet-wide.
    pub utilization: f64,
    /// Mean powered shards over the makespan (`Σ powered / makespan`).
    pub mean_active: f64,
    /// Off → Waking transitions across the fleet.
    pub wakes: u64,
    /// Active → Draining transitions across the fleet.
    pub drains: u64,
    /// Dynamic inference energy.
    pub dynamic_energy: Energy,
    /// Static floor energy (powered time × per-shard floor).
    pub static_energy: Energy,
    /// Dynamic plus static.
    pub total_energy: Energy,
    /// Total energy per completed inference.
    pub energy_per_inference: Energy,
    /// Per-shard lines, by shard id.
    pub shards: Vec<ShardStats>,
    /// Per-tenant SLO verdicts, in workload tenant order.
    pub tenants: Vec<TenantSloStats>,
    /// The merged fleet-wide windowed trajectory.
    pub windows: WindowSeries,
}

impl FleetReport {
    /// Fraction of arrivals rejected anywhere (router or shard queue).
    #[must_use]
    pub fn drop_rate(&self) -> f64 {
        if self.arrivals == 0 {
            return 0.0;
        }
        #[allow(clippy::cast_precision_loss)]
        {
            (self.router_shed + self.shard_shed) as f64 / self.arrivals as f64
        }
    }

    /// Goodput ratio: achieved throughput over offered load.
    #[must_use]
    pub fn goodput_ratio(&self) -> f64 {
        if self.offered_hz > 0.0 {
            self.achieved_hz / self.offered_hz
        } else {
            0.0
        }
    }

    /// Fraction of completions that shared a batch with another
    /// request: `1 − dispatches/completed`. The metric network-affinity
    /// routing exists to protect.
    #[must_use]
    pub fn merge_rate(&self) -> f64 {
        if self.completed == 0 {
            return 0.0;
        }
        #[allow(clippy::cast_precision_loss)]
        {
            1.0 - self.dispatches as f64 / self.completed as f64
        }
    }

    /// How many tenants met their p99 target.
    #[must_use]
    pub fn slo_attained(&self) -> usize {
        self.tenants.iter().filter(|t| t.attained()).count()
    }

    /// Assembles the fleet report from finished shard outcomes.
    ///
    /// # Panics
    ///
    /// Panics if `outcomes` is empty or `slos`/`router_shed` are not
    /// sized like the workload's tenants.
    #[must_use]
    #[allow(clippy::too_many_arguments)] // the one assembly point of every fleet-level measurement
    pub fn assemble(
        workload: &Workload,
        slos: &[TenantSlo],
        policy: &str,
        offered_hz: f64,
        arrivals: u64,
        router_shed: &[u64],
        makespan: Time,
        outcomes: &[ShardOutcome],
    ) -> Self {
        assert!(!outcomes.is_empty(), "a fleet needs at least one shard");
        assert_eq!(slos.len(), workload.tenants().len(), "one SLO per tenant");
        assert_eq!(router_shed.len(), slos.len(), "router shed is per tenant");

        let mut overall = LatencyBreakdown::default();
        let mut tenant_lat = vec![LatencyBreakdown::default(); slos.len()];
        let mut windows: Option<WindowSeries> = None;
        let mut shards = Vec::with_capacity(outcomes.len());
        let (mut completed, mut shard_shed, mut dispatches) = (0u64, 0u64, 0u64);
        let (mut wakes, mut drains) = (0u64, 0u64);
        let mut busy = Time::ZERO;
        let mut powered = Time::ZERO;
        let mut dynamic_energy = Energy::ZERO;
        let mut static_energy = Energy::ZERO;
        for (id, outcome) in outcomes.iter().enumerate() {
            let r = &outcome.report;
            overall.merge(&outcome.flight.overall);
            for (acc, t) in tenant_lat.iter_mut().zip(&outcome.flight.tenants) {
                acc.merge(t);
            }
            match windows.as_mut() {
                Some(w) => w.merge(&r.windows),
                None => windows = Some(r.windows.clone()),
            }
            let shard_dispatches = outcome.flight.recorder.counts()[3];
            let shard_busy = Time::new(r.utilization * r.makespan.value());
            completed += r.completed;
            shard_shed += r.dropped;
            dispatches += shard_dispatches;
            wakes += outcome.wakes;
            drains += outcome.drains;
            busy += shard_busy;
            powered += outcome.powered;
            dynamic_energy += r.total_energy; // machine static power was zero
            static_energy += outcome.static_energy;
            shards.push(ShardStats {
                id,
                design: r.config.design,
                routed: outcome.routed,
                completed: r.completed,
                shed: r.dropped,
                dispatches: shard_dispatches,
                mean_batch: r.mean_batch,
                utilization: shard_busy.value() / outcome.powered.value().max(1e-30),
                powered: outcome.powered,
                wakes: outcome.wakes,
                drains: outcome.drains,
                dynamic_energy: r.total_energy,
                static_energy: outcome.static_energy,
            });
        }
        let tenants = workload
            .tenants()
            .iter()
            .enumerate()
            .map(|(t, tenant)| TenantSloStats {
                name: tenant.name.clone(),
                slo: slos[t],
                completed: tenant_lat[t].count(),
                router_shed: router_shed[t],
                p99: Time::from_nanos({
                    #[allow(clippy::cast_precision_loss)]
                    {
                        tenant_lat[t].sojourn.percentile(0.99) as f64
                    }
                }),
            })
            .collect();
        let total_energy = dynamic_energy + static_energy;
        #[allow(clippy::cast_precision_loss)]
        let energy_per_inference = if completed > 0 {
            total_energy / completed as f64
        } else {
            Energy::ZERO
        };
        #[allow(clippy::cast_precision_loss)]
        let achieved_hz = if makespan.value() > 0.0 {
            completed as f64 / makespan.value()
        } else {
            0.0
        };
        // Every batched request completes, so batched_total == completed
        // and the fleet mean batch is exactly completed/dispatches.
        #[allow(clippy::cast_precision_loss)]
        let mean_batch = if dispatches > 0 {
            completed as f64 / dispatches as f64
        } else {
            0.0
        };
        // lint:allow(P002) assemble always sees at least one shard (asserted above)
        let windows = windows.expect("at least one shard");
        Self {
            policy: policy.to_owned(),
            shard_count: outcomes.len(),
            offered_hz,
            achieved_hz,
            arrivals,
            completed,
            router_shed: router_shed.iter().sum(),
            shard_shed,
            latency: percentiles(&overall.sojourn),
            queue_wait: percentiles(&overall.wait),
            service: percentiles(&overall.service),
            dispatches,
            mean_batch,
            makespan,
            utilization: busy.value() / powered.value().max(1e-30),
            mean_active: powered.value() / makespan.value().max(1e-30),
            wakes,
            drains,
            dynamic_energy,
            static_energy,
            total_energy,
            energy_per_inference,
            shards,
            tenants,
            windows,
        }
    }
}

/// Summarizes a latency histogram into the shared percentile set.
fn percentiles(histogram: &LatencyHistogram) -> LatencyPercentiles {
    let at = |q: f64| {
        Time::from_nanos({
            #[allow(clippy::cast_precision_loss)]
            {
                histogram.percentile(q) as f64
            }
        })
    };
    LatencyPercentiles {
        p50: at(0.50),
        p95: at(0.95),
        p99: at(0.99),
        p999: at(0.999),
        max: Time::from_nanos({
            #[allow(clippy::cast_precision_loss)]
            {
                histogram.max() as f64
            }
        }),
    }
}
