//! Pluggable request routing across fleet shards.
//!
//! A [`RoutePolicy`] picks a shard for each admitted request from a
//! snapshot of per-shard [`ShardView`]s. Policies are deterministic
//! state machines: the only randomness (power-of-two-choices) comes
//! from a seeded [`SplitMix64`] owned by the policy, so shard
//! assignments are a pure function of `(seed, request sequence, shard
//! states)` — bitwise identical across runs and `--jobs` levels.
//!
//! Four policies, in rising awareness of PIXEL's serving physics:
//!
//! * [`RouteKind::RoundRobin`] — cyclic spraying, the baseline.
//! * [`RouteKind::ShortestQueue`] — join-shortest-queue on the backlog
//!   (queued + in-flight), ties to the lowest shard id.
//! * [`RouteKind::PowerOfTwo`] — sample two distinct routable shards,
//!   keep the shorter backlog: near-JSQ balance at O(1) state.
//! * [`RouteKind::NetworkAffinity`] — steer same-CNN requests to the
//!   same *home* shard. Spraying destroys the head-of-line same-network
//!   runs that PIXEL's batch merging feeds on; affinity preserves them,
//!   trading a little balance for a higher merge rate (and with it
//!   pipeline-fill amortization). Affinity is *bounded-load*: a network
//!   keeps its home only while that shard's backlog stays within a
//!   fixed slack of the fleet minimum, and migrates to the least-loaded
//!   shard otherwise (or whenever the home becomes unroutable) — so a
//!   fleet that drained down and re-woke spreads its homes back out
//!   instead of pinning every network to the one survivor.

use pixel_serve::arrivals::Request;
use pixel_units::rng::SplitMix64;

/// A router-visible snapshot of one shard.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardView {
    /// Shard index within the fleet.
    pub id: usize,
    /// True when the router may send this shard new work
    /// (`Active` or `Waking`).
    pub routable: bool,
    /// True while the shard is in its wake transition.
    pub waking: bool,
    /// True when the shard is unpowered (`Off`).
    pub off: bool,
    /// Requests waiting in the shard's admission queue.
    pub queue_depth: usize,
    /// True while a batch is in flight.
    pub busy: bool,
}

impl ShardView {
    /// Queued plus in-flight work.
    #[must_use]
    pub fn backlog(&self) -> usize {
        self.queue_depth + usize::from(self.busy)
    }
}

/// A deterministic shard-selection policy.
pub trait RoutePolicy {
    /// Display label.
    fn label(&self) -> &'static str;

    /// Picks the shard id for `request` among the routable entries of
    /// `shards`.
    ///
    /// # Panics
    ///
    /// Implementations panic if no shard is routable (the fleet keeps
    /// at least one shard powered at all times).
    fn route(&mut self, request: &Request, shards: &[ShardView]) -> usize;
}

/// The built-in routing policies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RouteKind {
    /// Cyclic spraying over routable shards.
    RoundRobin,
    /// Join-shortest-queue on the backlog.
    ShortestQueue,
    /// Power-of-two-choices sampling.
    PowerOfTwo,
    /// Same-network home-shard steering.
    NetworkAffinity,
}

impl RouteKind {
    /// Every built-in policy, in artifact order.
    pub const ALL: [Self; 4] = [
        Self::RoundRobin,
        Self::ShortestQueue,
        Self::PowerOfTwo,
        Self::NetworkAffinity,
    ];

    /// Display label.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Self::RoundRobin => "round-robin",
            Self::ShortestQueue => "shortest-queue",
            Self::PowerOfTwo => "power-of-two",
            Self::NetworkAffinity => "net-affinity",
        }
    }

    /// Builds the policy's state machine. `seed` feeds the sampling
    /// stream (only power-of-two uses it); `networks` sizes the
    /// affinity home table.
    #[must_use]
    pub fn build(self, seed: u64, networks: usize) -> Box<dyn RoutePolicy> {
        match self {
            Self::RoundRobin => Box::new(RoundRobin { cursor: 0 }),
            Self::ShortestQueue => Box::new(ShortestQueue),
            Self::PowerOfTwo => Box::new(PowerOfTwo {
                rng: SplitMix64::seed_from_u64(seed),
            }),
            Self::NetworkAffinity => Box::new(NetworkAffinity {
                home: vec![None; networks],
                slack: 8,
            }),
        }
    }
}

/// Lowest-id routable shard strictly after the cursor, wrapping.
struct RoundRobin {
    cursor: usize,
}

impl RoutePolicy for RoundRobin {
    fn label(&self) -> &'static str {
        RouteKind::RoundRobin.label()
    }

    fn route(&mut self, _request: &Request, shards: &[ShardView]) -> usize {
        for step in 0..shards.len() {
            let candidate = (self.cursor + step) % shards.len();
            if shards[candidate].routable {
                self.cursor = (candidate + 1) % shards.len();
                return shards[candidate].id;
            }
        }
        unreachable!("no routable shard");
    }
}

/// Minimum backlog, ties to the lowest id.
struct ShortestQueue;

impl RoutePolicy for ShortestQueue {
    fn label(&self) -> &'static str {
        RouteKind::ShortestQueue.label()
    }

    fn route(&mut self, _request: &Request, shards: &[ShardView]) -> usize {
        shards
            .iter()
            .filter(|v| v.routable)
            .min_by_key(|v| (v.backlog(), v.id))
            .map(|v| v.id)
            .unwrap_or_else(|| unreachable!("no routable shard"))
    }
}

/// Two distinct seeded samples, keep the shorter backlog.
struct PowerOfTwo {
    rng: SplitMix64,
}

impl RoutePolicy for PowerOfTwo {
    fn label(&self) -> &'static str {
        RouteKind::PowerOfTwo.label()
    }

    fn route(&mut self, _request: &Request, shards: &[ShardView]) -> usize {
        let routable: Vec<&ShardView> = shards.iter().filter(|v| v.routable).collect();
        assert!(!routable.is_empty(), "no routable shard");
        if routable.len() == 1 {
            return routable[0].id;
        }
        let first = self.rng.range_usize(0, routable.len() - 1);
        // Sample the second *without replacement* so the two probes are
        // always distinct shards.
        let offset = self.rng.range_usize(0, routable.len() - 2);
        let second = if offset >= first { offset + 1 } else { offset };
        let (a, b) = (routable[first], routable[second]);
        if (b.backlog(), b.id) < (a.backlog(), a.id) {
            b.id
        } else {
            a.id
        }
    }
}

/// Per-network home shards with bounded load: sticky while the home
/// stays within `slack` backlog of the least-loaded routable shard,
/// migrating otherwise. The slack is one maximum batch — stickiness is
/// worth at most one batch of extra queueing, past which the merge-rate
/// gain cannot repay the wait.
struct NetworkAffinity {
    home: Vec<Option<usize>>,
    slack: usize,
}

impl RoutePolicy for NetworkAffinity {
    fn label(&self) -> &'static str {
        RouteKind::NetworkAffinity.label()
    }

    fn route(&mut self, request: &Request, shards: &[ShardView]) -> usize {
        let min_backlog = shards
            .iter()
            .filter(|v| v.routable)
            .map(ShardView::backlog)
            .min()
            .unwrap_or_else(|| unreachable!("no routable shard"));
        if let Some(home) = self.home[request.network] {
            if let Some(view) = shards.iter().find(|v| v.id == home && v.routable) {
                if view.backlog() <= min_backlog + self.slack {
                    return home;
                }
            }
        }
        // (Re)assign: the routable shard hosting the fewest homes, ties
        // to the smaller backlog, then the lowest id — spreads networks
        // across the fleet while keeping each network's run intact.
        let chosen = shards
            .iter()
            .filter(|v| v.routable)
            .min_by_key(|v| {
                let homes = self.home.iter().filter(|h| **h == Some(v.id)).count();
                (homes, v.backlog(), v.id)
            })
            .map(|v| v.id)
            .unwrap_or_else(|| unreachable!("no routable shard"));
        self.home[request.network] = Some(chosen);
        chosen
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pixel_units::VirtInstant;

    fn views(states: &[(bool, usize, bool)]) -> Vec<ShardView> {
        states
            .iter()
            .enumerate()
            .map(|(id, &(routable, queue_depth, busy))| ShardView {
                id,
                routable,
                waking: false,
                off: !routable,
                queue_depth,
                busy,
            })
            .collect()
    }

    fn req(network: usize) -> Request {
        Request {
            id: 0,
            tenant: 0,
            network,
            arrival: VirtInstant::EPOCH,
        }
    }

    #[test]
    fn round_robin_cycles_and_skips_unroutable() {
        let mut rr = RouteKind::RoundRobin.build(1, 6);
        let v = views(&[(true, 0, false), (false, 0, false), (true, 0, false)]);
        let picks: Vec<usize> = (0..4).map(|_| rr.route(&req(0), &v)).collect();
        assert_eq!(picks, vec![0, 2, 0, 2]);
    }

    #[test]
    fn shortest_queue_takes_minimum_backlog_with_id_ties() {
        let mut jsq = RouteKind::ShortestQueue.build(1, 6);
        let v = views(&[(true, 3, true), (true, 1, true), (true, 1, true)]);
        assert_eq!(jsq.route(&req(0), &v), 1, "tie breaks to the lowest id");
        let v = views(&[(true, 0, true), (true, 0, false), (true, 2, false)]);
        assert_eq!(jsq.route(&req(0), &v), 1, "busy counts as backlog");
    }

    #[test]
    fn power_of_two_is_seed_deterministic_and_never_picks_unroutable() {
        let v = views(&[
            (true, 5, true),
            (false, 0, false),
            (true, 0, false),
            (true, 2, true),
        ]);
        let run = |seed| {
            let mut p2c = RouteKind::PowerOfTwo.build(seed, 6);
            (0..32).map(|_| p2c.route(&req(0), &v)).collect::<Vec<_>>()
        };
        assert_eq!(run(7), run(7), "same seed, same picks");
        assert_ne!(run(7), run(8), "seed changes the sample stream");
        assert!(run(7).iter().all(|&id| id != 1), "unroutable shard picked");
    }

    #[test]
    fn affinity_keeps_a_network_home_and_migrates_when_unroutable() {
        let mut aff = RouteKind::NetworkAffinity.build(1, 6);
        let v = views(&[(true, 0, false), (true, 0, false)]);
        let home = aff.route(&req(3), &v);
        for _ in 0..8 {
            assert_eq!(aff.route(&req(3), &v), home, "home is sticky");
        }
        // A second network lands on the other shard (fewest homes).
        let other = aff.route(&req(1), &v);
        assert_ne!(other, home);
        // Home shard turns unroutable: the network migrates and stays.
        let mut degraded = v.clone();
        degraded[home].routable = false;
        let migrated = aff.route(&req(3), &degraded);
        assert_ne!(migrated, home);
        assert_eq!(aff.route(&req(3), &v), migrated, "migration is sticky");
    }
}
