//! One fleet shard: a serve machine plus its power ledger.
//!
//! A [`Shard`] wraps a [`ServeMachine`] and its per-design
//! [`ServiceModel`] behind a small power state machine. The serving
//! semantics are untouched — admission, batching, shedding, and all
//! windowed/latency accounting still live in the machine — but the
//! shard additionally tracks *when the fabric is drawing its static
//! (laser + heater) floor*. That ledger is what makes the fleet's
//! joules/request honest: a photonic shard burns its wall-plug floor
//! from the instant it is woken (the laser stabilizes while requests
//! are already being routed to it) until one `drain_latency` after it
//! empties, whether or not it served anything in between.
//!
//! The state machine:
//!
//! ```text
//! Active ──begin_drain──▶ Draining ──(idle ∧ empty)──▶ Off
//!    ▲                                                  │
//!    └───────── wake ends ◀── Waking ◀────── wake ──────┘
//! ```
//!
//! *Routable* (the router may send new work): `Active` or `Waking`.
//! *Serving* (the dispatch loop may run batches): `Active`, `Waking`
//! (arrivals queue while the laser stabilizes; dispatch waits for the
//! wake to end), or `Draining` (existing queue drains, no new work).

use pixel_core::config::AcceleratorConfig;
use pixel_core::model::EvalContext;
use pixel_serve::arrivals::{Request, Workload};
use pixel_serve::batching::Decision;
use pixel_serve::flightrec::FlightData;
use pixel_serve::machine::{Admission, FinishMeta, MachineConfig, ServeMachine};
use pixel_serve::report::ServeReport;
use pixel_serve::service::ServiceModel;
use pixel_units::{Energy, Power, Time, VirtInstant};

/// Power state of one shard.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PowerState {
    /// Powered and serving.
    Active,
    /// Powered, laser/heater stabilizing; serving resumes at `until`.
    Waking {
        /// Instant the wake transition completes.
        until: VirtInstant,
    },
    /// Powered, refusing new work, draining its queue.
    Draining,
    /// Unpowered: no static floor, not routable.
    Off,
}

/// A serve machine plus design backend and power ledger.
pub struct Shard {
    id: usize,
    accel: AcceleratorConfig,
    service: ServiceModel,
    machine: ServeMachine,
    state: PowerState,
    powered_since: Option<VirtInstant>,
    powered: Time,
    wakes: u64,
    drains: u64,
    routed: u64,
}

/// What one shard contributed to a finished fleet run.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardOutcome {
    /// The shard's serve report (dynamic energy only; the fleet charges
    /// the static floor against powered time, not the machine makespan).
    pub report: ServeReport,
    /// Event counts and latency decompositions.
    pub flight: FlightData,
    /// Requests the router sent this shard.
    pub routed: u64,
    /// Time the shard spent powered (drawing its static floor).
    pub powered: Time,
    /// Static floor energy: `static_power × powered`.
    pub static_energy: Energy,
    /// The shard's always-on wall-plug power when powered.
    pub static_power: Power,
    /// Off → Waking transitions taken.
    pub wakes: u64,
    /// Active → Draining transitions taken.
    pub drains: u64,
}

impl Shard {
    /// A shard of `accel` at the clock's epoch. `powered` shards start
    /// `Active` with their static floor burning from the epoch; the
    /// rest start `Off` (a cold autoscaled fleet wakes them on demand).
    #[must_use]
    pub fn new(
        id: usize,
        ctx: &EvalContext,
        workload: &Workload,
        accel: AcceleratorConfig,
        machine: &MachineConfig,
        powered: bool,
    ) -> Self {
        Self {
            id,
            accel,
            service: ServiceModel::new(ctx, workload, &accel),
            machine: ServeMachine::new(machine),
            state: if powered {
                PowerState::Active
            } else {
                PowerState::Off
            },
            powered_since: powered.then_some(VirtInstant::EPOCH),
            powered: Time::ZERO,
            wakes: 0,
            drains: 0,
            routed: 0,
        }
    }

    /// Shard index within the fleet.
    #[must_use]
    pub fn id(&self) -> usize {
        self.id
    }

    /// Current power state.
    #[must_use]
    pub fn state(&self) -> PowerState {
        self.state
    }

    /// True when the router may send this shard new work.
    #[must_use]
    pub fn is_routable(&self) -> bool {
        matches!(self.state, PowerState::Active | PowerState::Waking { .. })
    }

    /// True when the dispatch loop may run batches here (`Active` or
    /// `Draining`; a `Waking` shard queues but does not serve yet).
    #[must_use]
    pub fn can_serve(&self) -> bool {
        matches!(self.state, PowerState::Active | PowerState::Draining)
    }

    /// True while drawing the static floor.
    #[must_use]
    pub fn is_powered(&self) -> bool {
        self.powered_since.is_some()
    }

    /// True while a batch is in flight.
    #[must_use]
    pub fn is_busy(&self) -> bool {
        self.machine.is_busy()
    }

    /// Current queue depth.
    #[must_use]
    pub fn queue_depth(&self) -> usize {
        self.machine.queue_depth()
    }

    /// True when no requests wait.
    #[must_use]
    pub fn queue_is_empty(&self) -> bool {
        self.machine.queue_is_empty()
    }

    /// Queued plus in-flight work (the router's load signal).
    #[must_use]
    pub fn backlog(&self) -> usize {
        self.machine.queue_depth() + usize::from(self.machine.is_busy())
    }

    /// The shard machine's notion of now.
    #[must_use]
    pub fn now(&self) -> VirtInstant {
        self.machine.now()
    }

    /// Requests the router has sent this shard so far.
    #[must_use]
    pub fn routed(&self) -> u64 {
        self.routed
    }

    /// Scheduled completion of the in-flight batch, if any.
    #[must_use]
    pub fn planned_completion(&self) -> Option<VirtInstant> {
        self.machine.planned_completion()
    }

    /// Advances the shard machine's clock (never regresses).
    pub fn advance_to(&mut self, now: VirtInstant) {
        self.machine.advance_to(now);
    }

    /// Offers a routed request to the shard's admission queue.
    pub fn admit(&mut self, request: Request) -> Admission {
        self.routed += 1;
        self.machine.admit(request)
    }

    /// Consults the batching policy (only meaningful when
    /// [`Self::can_serve`] holds and the shard is idle).
    #[must_use]
    pub fn decide(&self) -> Decision {
        self.machine.decide()
    }

    /// Dispatches the head batch with this shard's service cost.
    pub fn dispatch(&mut self) {
        let service = &self.service;
        self.machine
            .dispatch(|network, batch| service.batch(network, batch));
    }

    /// Completes the in-flight planned batch.
    pub fn complete(&mut self) {
        self.machine.complete();
    }

    /// The shard's always-on wall-plug (laser + thermal tuning) power.
    #[must_use]
    pub fn static_power(&self) -> Power {
        self.service.static_power()
    }

    /// Powers an `Off` shard up at `now`: the static floor starts
    /// burning immediately, serving resumes `wake_latency` later.
    ///
    /// # Panics
    ///
    /// Panics unless the shard is `Off`.
    pub fn wake(&mut self, now: VirtInstant, wake_latency: Time) {
        assert_eq!(self.state, PowerState::Off, "wake on a powered shard");
        self.state = PowerState::Waking {
            until: now + wake_latency,
        };
        self.powered_since = Some(now);
        self.wakes += 1;
        pixel_obs::add("fleet.wakes", 1);
    }

    /// Completes a pending wake transition at its scheduled instant.
    ///
    /// # Panics
    ///
    /// Panics unless the shard is `Waking`.
    pub fn finish_wake(&mut self) {
        let PowerState::Waking { until } = self.state else {
            // lint:allow(P003) wake bookkeeping bug; silent recovery would corrupt the power ledger
            panic!("finish_wake on a shard that is not waking");
        };
        self.machine.advance_to(until);
        self.state = PowerState::Active;
    }

    /// Starts draining an `Active` shard: the router stops sending it
    /// work; the queue keeps draining.
    ///
    /// # Panics
    ///
    /// Panics unless the shard is `Active`.
    pub fn begin_drain(&mut self) {
        assert_eq!(
            self.state,
            PowerState::Active,
            "drain on a non-active shard"
        );
        self.state = PowerState::Draining;
        self.drains += 1;
        pixel_obs::add("fleet.drains", 1);
    }

    /// Powers a drained shard off once idle and empty, charging the
    /// powered interval up to `now` plus the `drain_latency` shutdown
    /// tail. Returns whether the shard turned off.
    pub fn try_power_off(&mut self, now: VirtInstant, drain_latency: Time) -> bool {
        if self.state != PowerState::Draining
            || self.machine.is_busy()
            || !self.machine.queue_is_empty()
        {
            return false;
        }
        let off_at = now.max(self.machine.now());
        if let Some(since) = self.powered_since.take() {
            self.powered += off_at.saturating_since(since) + drain_latency;
        }
        self.state = PowerState::Off;
        true
    }

    /// Closes the power ledger of a still-powered shard at the fleet's
    /// end-of-run instant.
    pub fn close(&mut self, end: VirtInstant) {
        if let Some(since) = self.powered_since.take() {
            self.powered += end.saturating_since(since);
        }
    }

    /// Finishes the shard's machine and folds the power ledger into a
    /// [`ShardOutcome`]. `offered_hz` is the share of fleet load this
    /// shard actually received.
    ///
    /// The machine is finished with a **zero** static power: the
    /// machine would otherwise charge the floor over its own makespan,
    /// but a fleet shard's floor follows its *powered* time (it may
    /// have been off for most of the run). The fleet report adds
    /// `static_power × powered` back explicitly.
    ///
    /// # Panics
    ///
    /// Panics if a batch is still in flight, or the power ledger was
    /// not closed ([`Self::close`] or [`Self::try_power_off`]).
    #[must_use]
    pub fn finish(self, workload: &Workload, offered_hz: f64) -> ShardOutcome {
        assert!(
            self.powered_since.is_none(),
            "finish with an open power ledger"
        );
        let static_power = self.service.static_power();
        let (report, flight) = self.machine.finish(
            &FinishMeta {
                accel: self.accel,
                offered_hz,
                static_power: Power::ZERO,
                arrivals: self.routed,
            },
            workload,
        );
        ShardOutcome {
            report,
            flight,
            routed: self.routed,
            powered: self.powered,
            static_energy: static_power * self.powered,
            static_power,
            wakes: self.wakes,
            drains: self.drains,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pixel_core::config::Design;
    use pixel_serve::batching::BatchPolicy;
    use pixel_serve::queue::ShedPolicy;

    fn machine_config() -> MachineConfig {
        MachineConfig {
            policy: BatchPolicy::Dynamic {
                max_size: 8,
                deadline: Time::ZERO,
            },
            queue_capacity: 16,
            shed: ShedPolicy::DropNewest,
            window_width: Time::new(1.0),
            window_max_bins: 8,
            event_capacity: 0,
            tenants: 3,
            networks: 6,
        }
    }

    fn shard() -> Shard {
        let workload = Workload::paper_mix();
        let ctx = EvalContext::new();
        Shard::new(
            0,
            &ctx,
            &workload,
            AcceleratorConfig::new(Design::Oo, 4, 16),
            &machine_config(),
            true,
        )
    }

    fn at(t: f64) -> VirtInstant {
        VirtInstant::from_secs(t)
    }

    #[test]
    fn power_ledger_charges_wake_interval_and_drain_tail() {
        let mut s = shard();
        // Drain the initial Active shard immediately: powered from the
        // epoch until off, plus the shutdown tail.
        s.begin_drain();
        assert!(s.try_power_off(at(2.0), Time::new(0.5)));
        assert_eq!(s.state(), PowerState::Off);
        assert!((s.powered.value() - 2.5).abs() < 1e-12);
        // Wake at t=4 with a 1 s stabilization: routable immediately,
        // serving only after finish_wake.
        s.wake(at(4.0), Time::new(1.0));
        assert!(s.is_routable());
        assert!(!s.can_serve());
        s.finish_wake();
        assert_eq!(s.state(), PowerState::Active);
        assert!(s.now() >= at(5.0));
        // Close at t=10: 2.5 + (10 − 4) = 8.5 s powered in total.
        s.close(at(10.0));
        assert!((s.powered.value() - 8.5).abs() < 1e-12);
    }

    #[test]
    fn draining_shard_refuses_power_off_while_work_remains() {
        let mut s = shard();
        let _ = s.admit(Request {
            id: 0,
            tenant: 0,
            network: 0,
            arrival: at(0.5),
        });
        s.begin_drain();
        assert!(!s.try_power_off(at(1.0), Time::ZERO), "queued work");
        s.dispatch();
        assert!(!s.try_power_off(at(1.0), Time::ZERO), "in flight");
        s.complete();
        assert!(s.try_power_off(at(1.0), Time::ZERO));
    }

    #[test]
    fn finish_reports_dynamic_only_machine_energy_plus_static_ledger() {
        let workload = Workload::paper_mix();
        let mut s = shard();
        let _ = s.admit(Request {
            id: 0,
            tenant: 0,
            network: 4,
            arrival: at(0.1),
        });
        s.dispatch();
        s.complete();
        s.close(at(1.0));
        let static_power = s.static_power();
        let outcome = s.finish(&workload, 1.0);
        assert_eq!(outcome.report.completed, 1);
        // The machine charged no static floor; the ledger did.
        assert!(outcome.static_energy.value() > 0.0);
        assert!(
            (outcome.static_energy.value() - static_power.value() * outcome.powered.value()).abs()
                < 1e-12
        );
        assert!(outcome.report.total_energy < outcome.static_energy + outcome.report.total_energy);
    }
}
