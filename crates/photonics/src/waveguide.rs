//! Silicon waveguide model.
//!
//! Paper §II-A3: pitch 5.5 µm, propagation delay 10.45 ps/mm, attenuation
//! 1.3 dB/cm.

use crate::constants;
use crate::signal::PulseTrain;
use crate::units::{Length, Time};

/// A straight on-chip silicon waveguide segment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Waveguide {
    length: Length,
    delay_ps_per_mm: f64,
    loss_db_per_cm: f64,
}

impl Waveguide {
    /// Creates a waveguide of the given length with the paper's delay and
    /// loss coefficients.
    #[must_use]
    pub fn new(length: Length) -> Self {
        Self {
            length,
            delay_ps_per_mm: constants::WAVEGUIDE_DELAY_PS_PER_MM,
            loss_db_per_cm: constants::WAVEGUIDE_LOSS_DB_PER_CM,
        }
    }

    /// Creates a waveguide with custom delay/loss coefficients.
    #[must_use]
    pub fn with_coefficients(length: Length, delay_ps_per_mm: f64, loss_db_per_cm: f64) -> Self {
        Self {
            length,
            delay_ps_per_mm,
            loss_db_per_cm,
        }
    }

    /// Physical length.
    #[must_use]
    pub fn length(&self) -> Length {
        self.length
    }

    /// Propagation delay over the full length.
    #[must_use]
    pub fn propagation_delay(&self) -> Time {
        Time::from_picos(self.delay_ps_per_mm * self.length.as_millimetres())
    }

    /// Total insertion loss in dB.
    #[must_use]
    pub fn loss_db(&self) -> f64 {
        self.loss_db_per_cm * self.length.as_centimetres()
    }

    /// Linear power transmission factor `10^(-loss_dB/10)`.
    #[must_use]
    pub fn transmission(&self) -> f64 {
        10f64.powf(-self.loss_db() / 10.0)
    }

    /// Propagates a pulse train through the waveguide, applying loss. The
    /// (sub-slot) propagation delay is reported separately by
    /// [`Self::propagation_delay`]; slot alignment is preserved because the
    /// architecture delay-matches paths.
    #[must_use]
    pub fn propagate(&self, input: &PulseTrain) -> PulseTrain {
        input.attenuated(self.transmission())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_delay_coefficient() {
        let wg = Waveguide::new(Length::from_millimetres(1.0));
        assert!((wg.propagation_delay().as_picos() - 10.45).abs() < 1e-9);
    }

    #[test]
    fn paper_loss_coefficient() {
        let wg = Waveguide::new(Length::from_centimetres(1.0));
        assert!((wg.loss_db() - 1.3).abs() < 1e-12);
        // 1.3 dB ≈ 74.1% transmission.
        assert!((wg.transmission() - 0.7413).abs() < 1e-3);
    }

    #[test]
    fn zero_length_is_lossless() {
        let wg = Waveguide::new(Length::ZERO);
        assert!((wg.transmission() - 1.0).abs() < 1e-12);
        assert!(wg.propagation_delay().as_picos().abs() < 1e-12);
    }

    #[test]
    fn propagate_attenuates_amplitudes() {
        let wg = Waveguide::new(Length::from_centimetres(1.0));
        let out = wg.propagate(&PulseTrain::from_bits(0b11, 2));
        assert!((out.total_amplitude() - 2.0 * wg.transmission()).abs() < 1e-12);
    }

    #[test]
    fn loss_composes_linearly_in_db() {
        let a = Waveguide::new(Length::from_centimetres(1.0));
        let b = Waveguide::new(Length::from_centimetres(2.0));
        assert!((b.loss_db() - 2.0 * a.loss_db()).abs() < 1e-12);
        assert!((b.transmission() - a.transmission().powi(2)).abs() < 1e-12);
    }
}
