//! Germanium-doped photodetector and back-end receiver model.
//!
//! Paper §II-A3: Ge photodiodes with transimpedance amplifiers recover
//! transmitted bits; for the all-optical design the photocurrent is fed to
//! an array of current comparators that resolve multi-pulse amplitude
//! levels (o/e converter design 2).

use crate::signal::PulseTrain;
use crate::units::{Energy, Power};

/// A germanium photodiode with receiver back end.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Photodetector {
    responsivity_a_per_w: f64,
    sensitivity: Power,
    energy_per_bit: Energy,
}

impl Photodetector {
    /// Creates a detector with the given responsivity \[A/W\], sensitivity
    /// (minimum detectable power per pulse) and receiver energy per bit.
    #[must_use]
    pub fn new(responsivity_a_per_w: f64, sensitivity: Power, energy_per_bit: Energy) -> Self {
        Self {
            responsivity_a_per_w,
            sensitivity,
            energy_per_bit,
        }
    }

    /// Responsivity in A/W.
    #[must_use]
    pub fn responsivity(&self) -> f64 {
        self.responsivity_a_per_w
    }

    /// Minimum detectable optical power for one pulse level.
    #[must_use]
    pub fn sensitivity(&self) -> Power {
        self.sensitivity
    }

    /// Receiver energy per detected bit slot (TIA + amplifier + CDR).
    #[must_use]
    pub fn energy_per_bit(&self) -> Energy {
        self.energy_per_bit
    }

    /// Photocurrent \[A\] produced by `optical` input power.
    #[must_use]
    pub fn photocurrent(&self, optical: Power) -> f64 {
        self.responsivity_a_per_w * optical.value()
    }

    /// Detects a binary train: each slot above half the unit-pulse power
    /// (with `unit_pulse` being the power of one launched pulse at the
    /// detector) is a 1. Returns the decoded word, LSB in slot 0, or `None`
    /// if a slot holds more than one pulse (binary receivers saturate).
    #[must_use]
    pub fn detect_binary(&self, train: &PulseTrain, unit_pulse: Power) -> Option<u64> {
        if unit_pulse < self.sensitivity {
            return None;
        }
        let mut word = 0u64;
        for (i, amp) in train.iter().enumerate() {
            let level = amp; // amplitudes are in unit-pulse counts
            if level > 1.5 {
                return None;
            }
            if level > 0.5 {
                if i >= 64 {
                    return None;
                }
                word |= 1 << i;
            }
        }
        Some(word)
    }

    /// Resolves a multi-level train with a ladder of `comparators` current
    /// comparators: each slot is quantized to an integer pulse count up to
    /// `comparators`. Returns `None` if any slot exceeds the ladder range
    /// or the unit pulse is below sensitivity.
    #[must_use]
    pub fn detect_levels(
        &self,
        train: &PulseTrain,
        unit_pulse: Power,
        comparators: u32,
    ) -> Option<Vec<u32>> {
        if unit_pulse < self.sensitivity {
            return None;
        }
        let levels = train.quantized_levels();
        if levels.iter().any(|&l| l > comparators) {
            return None;
        }
        Some(levels)
    }

    /// Receiver energy to process a train of `slots` bit slots.
    #[must_use]
    pub fn detection_energy(&self, slots: usize) -> Energy {
        #[allow(clippy::cast_precision_loss)]
        let n = slots as f64;
        self.energy_per_bit * n
    }
}

impl Default for Photodetector {
    /// 1.0 A/W responsivity, −20 dBm (10 µW) sensitivity, 50 fJ/bit
    /// receiver — representative Ge detector values.
    fn default() -> Self {
        Self::new(
            1.0,
            Power::from_microwatts(10.0),
            Energy::from_femtojoules(50.0),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn photocurrent_is_linear() {
        let pd = Photodetector::default();
        let i = pd.photocurrent(Power::from_milliwatts(1.0));
        assert!((i - 1e-3).abs() < 1e-12);
    }

    #[test]
    fn binary_detection_round_trip() {
        let pd = Photodetector::default();
        let train = PulseTrain::from_bits(0b1011, 4);
        let word = pd.detect_binary(&train, Power::from_microwatts(100.0));
        assert_eq!(word, Some(0b1011));
    }

    #[test]
    fn binary_detection_rejects_multilevel() {
        let pd = Photodetector::default();
        let t = PulseTrain::from_bits(0b1, 1).superpose(&PulseTrain::from_bits(0b1, 1));
        assert_eq!(pd.detect_binary(&t, Power::from_microwatts(100.0)), None);
    }

    #[test]
    fn detection_fails_below_sensitivity() {
        let pd = Photodetector::default();
        let t = PulseTrain::from_bits(0b1, 1);
        assert_eq!(pd.detect_binary(&t, Power::from_microwatts(1.0)), None);
        assert_eq!(pd.detect_levels(&t, Power::from_microwatts(1.0), 4), None);
    }

    #[test]
    fn level_detection_resolves_amplitudes() {
        let pd = Photodetector::default();
        let t = PulseTrain::from_amplitudes(vec![3.0, 0.0, 2.0, 1.0]);
        let levels = pd
            .detect_levels(&t, Power::from_microwatts(100.0), 4)
            .unwrap();
        assert_eq!(levels, vec![3, 0, 2, 1]);
    }

    #[test]
    fn level_detection_limited_by_ladder() {
        let pd = Photodetector::default();
        let t = PulseTrain::from_amplitudes(vec![5.0]);
        assert_eq!(pd.detect_levels(&t, Power::from_microwatts(100.0), 4), None);
        assert!(pd
            .detect_levels(&t, Power::from_microwatts(100.0), 5)
            .is_some());
    }

    #[test]
    fn detection_energy_scales_with_slots() {
        let pd = Photodetector::default();
        assert!((pd.detection_energy(10).as_femtojoules() - 500.0).abs() < 1e-9);
    }
}
