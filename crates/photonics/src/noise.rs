//! Receiver noise and bit-error-rate modeling.
//!
//! The analytic evaluation assumes clean detection; this module models
//! what the comparator-ladder o/e converter actually faces: Gaussian
//! amplitude noise on each pulse slot (lumping RIN, shot and thermal
//! receiver noise into one per-level sigma) and the resulting
//! level-decision error probability — the failure-injection substrate for
//! the OO robustness studies.

use crate::signal::PulseTrain;

/// Gaussian amplitude noise applied per slot, in units of one pulse.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AmplitudeNoise {
    sigma: f64,
}

impl AmplitudeNoise {
    /// Creates a noise source with standard deviation `sigma` (pulse
    /// units).
    ///
    /// # Panics
    ///
    /// Panics if `sigma` is negative.
    #[must_use]
    pub fn new(sigma: f64) -> Self {
        assert!(sigma >= 0.0, "sigma must be non-negative");
        Self { sigma }
    }

    /// The standard deviation.
    #[must_use]
    pub fn sigma(&self) -> f64 {
        self.sigma
    }

    /// Perturbs a train's slot amplitudes with zero-mean Gaussian noise
    /// (Box-Muller from the supplied uniform source). Clamped at zero —
    /// optical power cannot be negative.
    pub fn perturb(&self, train: &PulseTrain, mut uniform: impl FnMut() -> f64) -> PulseTrain {
        // lint:allow(D003) sigma exactly zero is the noiseless sentinel
        if self.sigma == 0.0 {
            return train.clone();
        }
        train
            .iter()
            .map(|amp| {
                let u1: f64 = uniform().clamp(1e-12, 1.0);
                let u2: f64 = uniform();
                let gaussian = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
                (amp + self.sigma * gaussian).max(0.0)
            })
            .collect()
    }

    /// Probability that one slot at an interior level is mis-decided by a
    /// mid-point comparator ladder: `P = 2·Q(1/(2σ))` where `Q` is the
    /// Gaussian tail function (edge levels have one-sided errors, so this
    /// is an upper bound).
    #[must_use]
    pub fn level_error_probability(&self) -> f64 {
        // lint:allow(D003) sigma exactly zero is the noiseless sentinel
        if self.sigma == 0.0 {
            return 0.0;
        }
        2.0 * q_function(0.5 / self.sigma)
    }
}

/// The Gaussian tail function `Q(x) = ½·erfc(x/√2)`, via the
/// Abramowitz-Stegun erfc approximation (|ε| < 1.5e-7).
#[must_use]
pub fn q_function(x: f64) -> f64 {
    0.5 * erfc(x / std::f64::consts::SQRT_2)
}

/// Complementary error function (Abramowitz & Stegun 7.1.26).
#[must_use]
pub fn erfc(x: f64) -> f64 {
    let sign_negative = x < 0.0;
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.327_591_1 * x);
    let poly = t
        * (0.254_829_592
            + t * (-0.284_496_736
                + t * (1.421_413_741 + t * (-1.453_152_027 + t * 1.061_405_429))));
    let erfc = poly * (-x * x).exp();
    if sign_negative {
        2.0 - erfc
    } else {
        erfc
    }
}

/// Bit error rate of a binary (on/off) receiver at a given Q-factor:
/// `BER = Q(q)`. A link engineered to the classic q = 7 runs at ~1e-12.
#[must_use]
pub fn ber_from_q_factor(q: f64) -> f64 {
    q_function(q)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pixel_units::rng::SplitMix64;

    #[test]
    fn erfc_reference_values() {
        assert!((erfc(0.0) - 1.0).abs() < 1e-7);
        assert!((erfc(1.0) - 0.157_299_2).abs() < 1e-6);
        assert!((erfc(2.0) - 0.004_677_7).abs() < 1e-6);
        assert!((erfc(-1.0) - (2.0 - 0.157_299_2)).abs() < 1e-6);
    }

    #[test]
    fn q_function_is_half_at_zero_and_decreasing() {
        assert!((q_function(0.0) - 0.5).abs() < 1e-9);
        assert!(q_function(1.0) > q_function(2.0));
        assert!(q_function(7.0) < 2e-12);
    }

    #[test]
    fn classic_link_budget_q7() {
        let ber = ber_from_q_factor(7.0);
        assert!(ber < 2e-12 && ber > 1e-14, "BER {ber}");
    }

    #[test]
    fn zero_sigma_is_transparent() {
        let noise = AmplitudeNoise::new(0.0);
        let train = PulseTrain::from_bits(0b1011, 4);
        let out = noise.perturb(&train, || 0.5);
        assert_eq!(out, train);
        assert_eq!(noise.level_error_probability(), 0.0);
    }

    #[test]
    fn small_noise_rounds_away() {
        let noise = AmplitudeNoise::new(0.05);
        let mut rng = SplitMix64::seed_from_u64(1);
        let train = PulseTrain::from_bits(0b1011, 4);
        let out = noise.perturb(&train, move || rng.next_f64());
        assert_eq!(out.to_bits(), Some(0b1011), "σ=0.05 never flips a level");
    }

    #[test]
    fn error_probability_grows_with_sigma() {
        let small = AmplitudeNoise::new(0.1).level_error_probability();
        let large = AmplitudeNoise::new(0.3).level_error_probability();
        assert!(large > small);
        // σ = 0.1 → 2·Q(5) ≈ 5.7e-7.
        assert!(small < 1e-6, "σ=0.1 error {small}");
        // σ = 0.3 → 2·Q(1.67) ≈ 9.5e-2.
        assert!((large - 0.095).abs() < 0.01, "σ=0.3 error {large}");
    }

    #[test]
    fn empirical_error_rate_matches_model() {
        // Monte-Carlo the comparator decision at σ = 0.25 and compare
        // against 2·Q(2) ≈ 4.55e-2.
        let noise = AmplitudeNoise::new(0.25);
        let mut rng = SplitMix64::seed_from_u64(7);
        let trials = 40_000;
        let mut errors = 0u32;
        for _ in 0..trials {
            let train = PulseTrain::from_amplitudes(vec![2.0]); // interior level
            let out = noise.perturb(&train, || rng.next_f64());
            if out.quantized_levels()[0] != 2 {
                errors += 1;
            }
        }
        let empirical = f64::from(errors) / f64::from(trials);
        let model = noise.level_error_probability();
        assert!(
            (empirical - model).abs() < 0.006,
            "empirical {empirical} vs model {model}"
        );
    }

    #[test]
    fn negative_power_is_clamped() {
        let noise = AmplitudeNoise::new(5.0);
        let mut rng = SplitMix64::seed_from_u64(3);
        let train = PulseTrain::from_amplitudes(vec![0.1; 64]);
        let out = noise.perturb(&train, move || rng.next_f64());
        assert!(out.iter().all(|a| a >= 0.0));
    }
}
