//! Optical signal representation for bit-true simulation.
//!
//! A [`PulseTrain`] is a time-slotted sequence of optical pulse amplitudes on
//! a single wavelength: slot `t` holds the number of unit pulses (in power
//! units, so superposition is additive) present in optical clock cycle `t`.
//! Binary data is launched LSB-first, matching the paper's description of
//! the MZI accumulator that starts "with the LSB (bit position 0)".
//!
//! A [`WdmSignal`] carries one pulse train per wavelength, modelling the
//! wavelength-division-multiplexed home channels of the OMAC design.

use std::collections::BTreeMap;
use std::fmt;

/// Identifies a WDM wavelength channel (λ₀, λ₁, …).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct WavelengthId(pub u16);

impl WavelengthId {
    /// Returns the channel index.
    #[must_use]
    pub fn index(self) -> usize {
        usize::from(self.0)
    }
}

impl fmt::Display for WavelengthId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "λ{}", self.0)
    }
}

/// A time-slotted train of optical pulse amplitudes on one wavelength.
///
/// Amplitudes are in linear power units where one launched bit pulse has
/// amplitude 1.0; combining signals in an MZI coupler adds amplitudes.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct PulseTrain {
    slots: Vec<f64>,
}

impl PulseTrain {
    /// Creates an empty pulse train.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a train of `len` dark (zero-amplitude) slots.
    #[must_use]
    pub fn dark(len: usize) -> Self {
        Self {
            slots: vec![0.0; len],
        }
    }

    /// Creates a train from raw amplitude slots.
    #[must_use]
    pub fn from_amplitudes(slots: Vec<f64>) -> Self {
        Self { slots }
    }

    /// Launches the low `bits` bits of `value` LSB-first: slot 0 carries bit
    /// 0, slot 1 carries bit 1, and so on.
    ///
    /// # Panics
    ///
    /// Panics if `bits > 64`.
    #[must_use]
    pub fn from_bits(value: u64, bits: usize) -> Self {
        assert!(bits <= 64, "at most 64 bits per word");
        let slots = (0..bits)
            .map(|i| if (value >> i) & 1 == 1 { 1.0 } else { 0.0 })
            .collect();
        Self { slots }
    }

    /// Re-launches the low `bits` bits of `value` LSB-first into this
    /// train, reusing its slot storage (the in-place counterpart of
    /// [`Self::from_bits`] for per-window scratch buffers).
    ///
    /// # Panics
    ///
    /// Panics if `bits > 64`.
    pub fn write_bits(&mut self, value: u64, bits: usize) {
        assert!(bits <= 64, "at most 64 bits per word");
        self.slots.clear();
        self.slots
            .extend((0..bits).map(|i| if (value >> i) & 1 == 1 { 1.0 } else { 0.0 }));
    }

    /// Turns this train into `len` dark slots, reusing its storage (the
    /// in-place counterpart of [`Self::dark`]).
    pub fn set_dark(&mut self, len: usize) {
        self.slots.clear();
        self.slots.resize(len, 0.0);
    }

    /// Copies another train's slots into this one, reusing storage.
    pub fn copy_from(&mut self, other: &Self) {
        self.slots.clear();
        self.slots.extend_from_slice(&other.slots);
    }

    /// Superposes `other`, delayed by `shift` slots, onto this train in
    /// place — the buffer-reuse form of `self.superpose(&other.delayed(shift))`,
    /// growing the train with dark slots as needed.
    pub fn add_shifted(&mut self, other: &Self, shift: usize) {
        let needed = shift + other.slots.len();
        if self.slots.len() < needed {
            self.slots.resize(needed, 0.0);
        }
        for (t, &a) in other.slots.iter().enumerate() {
            // lint:allow(P104) slots was resized to shift + other.len() just above
            self.slots[t + shift] += a;
        }
    }

    /// Number of time slots in the train.
    #[must_use]
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Returns `true` if the train has no slots.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Amplitude in slot `t` (0.0 beyond the end — the fibre is dark).
    #[must_use]
    pub fn amplitude(&self, t: usize) -> f64 {
        self.slots.get(t).copied().unwrap_or(0.0)
    }

    /// Iterates over slot amplitudes.
    pub fn iter(&self) -> impl Iterator<Item = f64> + '_ {
        self.slots.iter().copied()
    }

    /// The raw slot amplitudes in time order.
    #[must_use]
    pub fn amplitudes(&self) -> &[f64] {
        &self.slots
    }

    /// Total slot amplitude of the train (sum of slot amplitudes — a
    /// dimensionless count of lit pulse-slots, not a watt-valued power).
    #[must_use]
    pub fn total_amplitude(&self) -> f64 {
        self.slots.iter().sum()
    }

    /// Gates the train with an on/off modulator: `on = false` extinguishes
    /// every slot. This is the MRR AND against a single synapse bit.
    #[must_use]
    pub fn gated(&self, on: bool) -> Self {
        if on {
            self.clone()
        } else {
            Self::dark(self.len())
        }
    }

    /// Attenuates every slot by a linear factor (waveguide loss).
    #[must_use]
    pub fn attenuated(&self, linear_factor: f64) -> Self {
        Self {
            slots: self.slots.iter().map(|a| a * linear_factor).collect(),
        }
    }

    /// Delays the train by `slots` whole time slots (dark fill at the front).
    /// This models a delay-matched path between cascaded MZIs.
    #[must_use]
    pub fn delayed(&self, slots: usize) -> Self {
        let mut out = vec![0.0; slots];
        out.extend_from_slice(&self.slots);
        Self { slots: out }
    }

    /// Superposes two trains slot-by-slot (additive coupling in an MZI).
    #[must_use]
    pub fn superpose(&self, other: &Self) -> Self {
        let len = self.len().max(other.len());
        let slots = (0..len)
            .map(|t| self.amplitude(t) + other.amplitude(t))
            .collect();
        Self { slots }
    }

    /// Rounds each slot amplitude to the nearest integer pulse count, as a
    /// comparator-ladder o/e converter would resolve it.
    #[must_use]
    pub fn quantized_levels(&self) -> Vec<u32> {
        let mut out = Vec::new();
        self.quantized_levels_into(&mut out);
        out
    }

    /// [`Self::quantized_levels`] into a reused buffer (cleared first).
    pub fn quantized_levels_into(&self, out: &mut Vec<u32>) {
        out.clear();
        out.extend(self.slots.iter().map(|a| {
            debug_assert!(*a >= -1e-9, "negative optical power");
            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
            {
                a.round().max(0.0) as u32
            }
        }));
    }

    /// Interprets the train as a binary word (each slot must round to 0/1),
    /// LSB in slot 0. Returns `None` if any slot holds a multi-pulse level.
    #[must_use]
    pub fn to_bits(&self) -> Option<u64> {
        let mut v: u64 = 0;
        for (i, level) in self.quantized_levels().into_iter().enumerate() {
            match level {
                0 => {}
                1 => {
                    if i >= 64 {
                        return None;
                    }
                    v |= 1 << i;
                }
                _ => return None,
            }
        }
        Some(v)
    }

    /// Weighted positional sum Σ level(t)·2^t — the value a shift-accumulate
    /// backend recovers from a multi-level train.
    #[must_use]
    pub fn positional_value(&self) -> u64 {
        self.quantized_levels()
            .into_iter()
            .enumerate()
            .fold(0u64, |acc, (i, level)| {
                acc + (u64::from(level) << i.min(63))
            })
    }

    /// The highest integer pulse level present in any slot.
    #[must_use]
    pub fn peak_level(&self) -> u32 {
        self.quantized_levels().into_iter().max().unwrap_or(0)
    }
}

impl FromIterator<f64> for PulseTrain {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        Self {
            slots: iter.into_iter().collect(),
        }
    }
}

/// A wavelength-division-multiplexed bundle of pulse trains.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct WdmSignal {
    channels: BTreeMap<WavelengthId, PulseTrain>,
}

impl WdmSignal {
    /// Creates an empty WDM signal.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Multiplexes `train` onto channel `id`, superposing with any signal
    /// already on that wavelength.
    pub fn mux(&mut self, id: WavelengthId, train: PulseTrain) {
        self.channels
            .entry(id)
            .and_modify(|existing| *existing = existing.superpose(&train))
            .or_insert(train);
    }

    /// Drops (demultiplexes) channel `id`, returning a dark train if absent.
    #[must_use]
    pub fn demux(&self, id: WavelengthId) -> PulseTrain {
        self.channels.get(&id).cloned().unwrap_or_default()
    }

    /// Borrows channel `id` without cloning (`None` when the wavelength
    /// is dark) — the receive-side counterpart of [`Self::set_channel`]
    /// for allocation-free transport loops.
    #[must_use]
    pub fn channel(&self, id: WavelengthId) -> Option<&PulseTrain> {
        self.channels.get(&id)
    }

    /// Overwrites channel `id` with a copy of `train`, reusing the slot
    /// storage already allocated on that wavelength. Unlike [`Self::mux`]
    /// this *replaces* rather than superposes — the refresh a firing tile
    /// performs between rounds on its own band.
    pub fn set_channel(&mut self, id: WavelengthId, train: &PulseTrain) {
        self.channels
            .entry(id)
            .and_modify(|existing| existing.copy_from(train))
            .or_insert_with(|| train.clone());
    }

    /// Number of active wavelength channels.
    #[must_use]
    pub fn channel_count(&self) -> usize {
        self.channels.len()
    }

    /// Iterates over `(wavelength, train)` pairs in channel order.
    pub fn iter(&self) -> impl Iterator<Item = (WavelengthId, &PulseTrain)> {
        self.channels.iter().map(|(id, t)| (*id, t))
    }

    /// Aggregate slot amplitude across all channels.
    #[must_use]
    pub fn total_amplitude(&self) -> f64 {
        self.channels
            .values()
            .map(PulseTrain::total_amplitude)
            .sum()
    }
}

impl FromIterator<(WavelengthId, PulseTrain)> for WdmSignal {
    fn from_iter<I: IntoIterator<Item = (WavelengthId, PulseTrain)>>(iter: I) -> Self {
        let mut s = Self::new();
        for (id, t) in iter {
            s.mux(id, t);
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bits_round_trip_lsb_first() {
        // 0110₂ = 6: slot0=0, slot1=1, slot2=1, slot3=0.
        let t = PulseTrain::from_bits(0b0110, 4);
        assert_eq!(t.len(), 4);
        assert!((t.amplitude(1) - 1.0).abs() < 1e-12);
        assert!((t.amplitude(0)).abs() < 1e-12);
        assert_eq!(t.to_bits(), Some(6));
    }

    #[test]
    fn gating_models_mrr_and() {
        let t = PulseTrain::from_bits(0b1011, 4);
        assert_eq!(t.gated(true).to_bits(), Some(0b1011));
        assert_eq!(t.gated(false).to_bits(), Some(0));
        assert_eq!(t.gated(false).len(), 4);
    }

    #[test]
    fn delay_shifts_positional_value() {
        let t = PulseTrain::from_bits(0b1, 1);
        let d = t.delayed(3);
        assert_eq!(d.positional_value(), 8); // 1 << 3
        assert!((d.amplitude(3) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn superposition_is_additive() {
        let a = PulseTrain::from_bits(0b11, 2);
        let b = PulseTrain::from_bits(0b01, 2);
        let s = a.superpose(&b);
        assert_eq!(s.quantized_levels(), vec![2, 1]);
        assert_eq!(s.positional_value(), 2 + 2); // 2·2⁰ + 1·2¹
        assert!(s.to_bits().is_none(), "multi-level is not binary");
    }

    #[test]
    fn superpose_with_mismatched_lengths() {
        let a = PulseTrain::from_bits(0b1, 1);
        let b = PulseTrain::from_bits(0b100, 3);
        let s = a.superpose(&b);
        assert_eq!(s.len(), 3);
        assert_eq!(s.positional_value(), 1 + 4);
    }

    #[test]
    fn attenuation_scales_power() {
        let t = PulseTrain::from_bits(0b11, 2);
        let att = t.attenuated(0.5);
        assert!((att.total_amplitude() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn quantization_rounds_to_nearest() {
        let t = PulseTrain::from_amplitudes(vec![0.96, 2.04, 0.02]);
        assert_eq!(t.quantized_levels(), vec![1, 2, 0]);
        assert_eq!(t.peak_level(), 2);
    }

    #[test]
    fn wdm_mux_demux() {
        let mut s = WdmSignal::new();
        s.mux(WavelengthId(0), PulseTrain::from_bits(0b10, 2));
        s.mux(WavelengthId(3), PulseTrain::from_bits(0b01, 2));
        assert_eq!(s.channel_count(), 2);
        assert_eq!(s.demux(WavelengthId(0)).to_bits(), Some(2));
        assert_eq!(s.demux(WavelengthId(3)).to_bits(), Some(1));
        assert!(s.demux(WavelengthId(9)).is_empty());
    }

    #[test]
    fn wdm_mux_same_channel_superposes() {
        let mut s = WdmSignal::new();
        s.mux(WavelengthId(0), PulseTrain::from_bits(0b1, 2));
        s.mux(WavelengthId(0), PulseTrain::from_bits(0b1, 2));
        assert_eq!(s.demux(WavelengthId(0)).quantized_levels(), vec![2, 0]);
        assert!((s.total_amplitude() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn wavelength_display() {
        assert_eq!(format!("{}", WavelengthId(5)), "λ5");
    }

    #[test]
    fn in_place_writers_match_constructors() {
        let mut t = PulseTrain::from_bits(0b111, 3);
        t.write_bits(0b1011, 4);
        assert_eq!(t, PulseTrain::from_bits(0b1011, 4));
        t.set_dark(2);
        assert_eq!(t, PulseTrain::dark(2));
        t.copy_from(&PulseTrain::from_bits(0b01, 2));
        assert_eq!(t.to_bits(), Some(1));
    }

    #[test]
    fn add_shifted_matches_superpose_of_delayed() {
        let a = PulseTrain::from_bits(0b101, 3);
        let b = PulseTrain::from_bits(0b11, 2);
        let reference = a.superpose(&b.delayed(2));
        let mut acc = PulseTrain::new();
        acc.add_shifted(&a, 0);
        acc.add_shifted(&b, 2);
        assert_eq!(acc, reference);
        assert_eq!(acc.amplitudes().len(), 4);
    }

    #[test]
    fn quantized_levels_into_reuses_buffer() {
        let t = PulseTrain::from_amplitudes(vec![0.96, 2.04, 0.02]);
        let mut buf = vec![9u32; 8];
        t.quantized_levels_into(&mut buf);
        assert_eq!(buf, vec![1, 2, 0]);
    }

    #[test]
    fn set_channel_replaces_and_channel_borrows() {
        let mut s = WdmSignal::new();
        s.set_channel(WavelengthId(2), &PulseTrain::from_bits(0b1, 2));
        s.set_channel(WavelengthId(2), &PulseTrain::from_bits(0b10, 2));
        assert_eq!(s.channel_count(), 1);
        assert_eq!(
            s.channel(WavelengthId(2)).and_then(PulseTrain::to_bits),
            Some(2)
        );
        assert!(s.channel(WavelengthId(0)).is_none());
    }
}
