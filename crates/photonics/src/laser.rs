//! On-chip InP Fabry-Pérot laser model.
//!
//! Paper §II-A3: 50 µm × 300 µm × 5 µm lasers with short turn-on delay,
//! each channel operating up to 128 wavelengths.

use crate::constants::MAX_WAVELENGTHS_PER_CHANNEL;
use crate::units::{Area, Energy, Length, Power, Time};

/// Error returned when a laser is asked for more wavelengths than one
/// channel supports.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExceedsChannelCapacityError {
    /// Wavelengths requested.
    pub requested: usize,
    /// Channel capacity.
    pub capacity: usize,
}

impl std::fmt::Display for ExceedsChannelCapacityError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "requested {} wavelengths but one laser channel supports {}",
            self.requested, self.capacity
        )
    }
}

impl std::error::Error for ExceedsChannelCapacityError {}

/// An on-chip InP-based Fabry-Pérot comb laser.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FabryPerotLaser {
    power_per_wavelength: Power,
    wall_plug_efficiency: f64,
    turn_on_delay: Time,
    wavelengths: usize,
}

impl FabryPerotLaser {
    /// Creates a laser driving `wavelengths` WDM channels at
    /// `power_per_wavelength` optical output each.
    ///
    /// # Errors
    ///
    /// Returns [`ExceedsChannelCapacityError`] if `wavelengths` exceeds the
    /// 128-wavelength channel capacity the paper cites.
    pub fn new(
        wavelengths: usize,
        power_per_wavelength: Power,
        wall_plug_efficiency: f64,
    ) -> Result<Self, ExceedsChannelCapacityError> {
        if wavelengths > MAX_WAVELENGTHS_PER_CHANNEL {
            return Err(ExceedsChannelCapacityError {
                requested: wavelengths,
                capacity: MAX_WAVELENGTHS_PER_CHANNEL,
            });
        }
        Ok(Self {
            power_per_wavelength,
            wall_plug_efficiency: wall_plug_efficiency.clamp(1e-6, 1.0),
            turn_on_delay: Time::from_nanos(1.0),
            wavelengths,
        })
    }

    /// Number of wavelengths generated.
    #[must_use]
    pub fn wavelengths(&self) -> usize {
        self.wavelengths
    }

    /// Optical output power per wavelength.
    #[must_use]
    pub fn power_per_wavelength(&self) -> Power {
        self.power_per_wavelength
    }

    /// Wall-plug efficiency (electrical→optical).
    #[must_use]
    pub fn wall_plug_efficiency(&self) -> f64 {
        self.wall_plug_efficiency
    }

    /// Turn-on delay ("short turn-on delay" — default 1 ns).
    #[must_use]
    pub fn turn_on_delay(&self) -> Time {
        self.turn_on_delay
    }

    /// Total optical output power.
    #[must_use]
    pub fn optical_power(&self) -> Power {
        #[allow(clippy::cast_precision_loss)]
        let n = self.wavelengths as f64;
        self.power_per_wavelength * n
    }

    /// Electrical power drawn from the supply.
    #[must_use]
    pub fn electrical_power(&self) -> Power {
        Power::new(self.optical_power().value() / self.wall_plug_efficiency)
    }

    /// Electrical energy consumed while lasing for `duration`.
    #[must_use]
    pub fn energy_over(&self, duration: Time) -> Energy {
        self.electrical_power() * duration
    }

    /// Die footprint (50 µm × 300 µm; height ignored for area).
    #[must_use]
    pub fn area(&self) -> Area {
        Length::from_micrometres(50.0) * Length::from_micrometres(300.0)
    }
}

impl Default for FabryPerotLaser {
    /// A 4-wavelength comb at 1 mW/λ and 10% wall-plug efficiency —
    /// representative values for on-chip FP combs.
    fn default() -> Self {
        // lint:allow(P002) constant 4 channels is within the 128-channel capacity
        Self::new(4, Power::from_milliwatts(1.0), 0.1).expect("4 <= 128")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_excess_wavelengths() {
        let err = FabryPerotLaser::new(129, Power::from_milliwatts(1.0), 0.1).unwrap_err();
        assert_eq!(err.requested, 129);
        assert_eq!(err.capacity, 128);
        assert!(err.to_string().contains("129"));
    }

    #[test]
    fn accepts_full_channel() {
        let laser = FabryPerotLaser::new(128, Power::from_milliwatts(1.0), 0.1).unwrap();
        assert_eq!(laser.wavelengths(), 128);
        assert!((laser.optical_power().as_milliwatts() - 128.0).abs() < 1e-9);
    }

    #[test]
    fn wall_plug_scales_electrical_power() {
        let laser = FabryPerotLaser::new(1, Power::from_milliwatts(1.0), 0.25).unwrap();
        assert!((laser.electrical_power().as_milliwatts() - 4.0).abs() < 1e-9);
    }

    #[test]
    fn energy_over_duration() {
        let laser = FabryPerotLaser::new(1, Power::from_milliwatts(1.0), 0.5).unwrap();
        let e = laser.energy_over(Time::from_nanos(10.0));
        // 2 mW × 10 ns = 20 pJ.
        assert!((e.as_picojoules() - 20.0).abs() < 1e-9);
    }

    #[test]
    fn footprint_matches_paper_dimensions() {
        let laser = FabryPerotLaser::default();
        assert!((laser.area().as_square_micrometres() - 15_000.0).abs() < 1e-6);
    }

    #[test]
    fn efficiency_is_clamped() {
        let laser = FabryPerotLaser::new(1, Power::from_milliwatts(1.0), 3.0).unwrap();
        assert!((laser.wall_plug_efficiency() - 1.0).abs() < 1e-12);
    }
}
