//! Photonic device substrate for the PIXEL accelerator reproduction.
//!
//! This crate models the silicon-photonic devices that PIXEL (HPCA 2020) is
//! built from, at two complementary levels:
//!
//! 1. **Analytic device models** — energy per bit, area, and propagation
//!    delay for microring resonators ([`mrr`]), Mach-Zehnder interferometers
//!    ([`mzi`]), waveguides ([`waveguide`]), on-chip Fabry-Pérot lasers
//!    ([`laser`]) and germanium photodetectors ([`photodetector`]), using the
//!    constants the paper reports (7.5 µm ring radius, n_Si = 3.48 at
//!    1550 nm, 10.45 ps/mm waveguide delay, …).
//! 2. **Bit-true functional simulation** — optical pulse trains
//!    ([`signal::PulseTrain`]) propagated through device state machines so
//!    that the optical AND (double-MRR filter) and the delay-matched MZI
//!    accumulator chain can be *executed* and checked against integer
//!    arithmetic, not just costed.
//!
//! # Example
//!
//! Computing the S-path delay through a double-MRR filter (Eq. 7 of the
//! paper) and the delay-matched spacing of an MZI accumulator (Eq. 9):
//!
//! ```
//! use pixel_photonics::mrr::DoubleMrrFilter;
//! use pixel_photonics::mzi::MziChain;
//!
//! let filter = DoubleMrrFilter::default();
//! let delay_ps = filter.s_path_delay().as_picos();
//! assert!((delay_ps - 0.547).abs() < 0.01);
//!
//! let chain = MziChain::delay_matched(8, 10.0e9);
//! assert!((chain.inter_stage_spacing_m() - 6.77e-3).abs() < 0.2e-3);
//! ```

pub mod complex;
pub mod constants;
pub mod directed_logic;
pub mod laser;
pub mod link;
pub mod mesh;
pub mod mrr;
pub mod mzi;
pub mod noise;
pub mod photodetector;
pub mod serdes;
pub mod signal;
pub mod spectral;
pub mod thermal;
pub mod waveguide;

/// Re-export of the shared physical-quantity types.
pub use pixel_units as units;
pub mod wdm;

pub use complex::Complex;
pub use laser::FabryPerotLaser;
pub use link::PhotonicLink;
pub use mrr::DoubleMrrFilter;
pub use mzi::{Mzi, MziChain};
pub use photodetector::Photodetector;
pub use signal::{PulseTrain, WavelengthId, WdmSignal};
pub use units::{Energy, Length, Power, Time};
pub use waveguide::Waveguide;
