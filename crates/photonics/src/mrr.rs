//! Cascaded double microring-resonator (MRR) filters — the optical AND.
//!
//! Paper §II-A1 and Fig. 1(a,b): with no drive voltage (`V_off`) the filter
//! is in the **bar** state and light entering input port `I₀` continues to
//! output `O₀`. With drive voltage applied (`V_on`) the resonant wavelength
//! couples through both rings to the **cross** output `O₁`.
//!
//! Injecting data only on `I₀` makes the cross-port output the logical AND
//! of the incoming optical bit (A) and the electrical drive (B): light
//! appears at `O₁` only when `A = 1` and `B = 1`.

use crate::constants;
use crate::signal::PulseTrain;
use crate::units::{Area, Energy, Length, Time};

/// Drive state of a double-MRR filter.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum MrrState {
    /// `V_off`: input `I₀` passes straight to `O₀` (Fig. 1a/d).
    #[default]
    Bar,
    /// `V_on`: the resonant wavelength couples to `O₁` (Fig. 1b).
    Cross,
}

impl MrrState {
    /// Encodes a synapse bit as a drive state: bit 1 drives the rings so
    /// the neuron signal couples through (AND with 1), bit 0 leaves them
    /// off-resonance (AND with 0).
    #[must_use]
    pub fn from_bit(bit: bool) -> Self {
        if bit {
            Self::Cross
        } else {
            Self::Bar
        }
    }
}

/// Output of routing a pulse train through a double-MRR filter.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MrrOutputs {
    /// Signal emerging from the through port `O₀`.
    pub through: PulseTrain,
    /// Signal emerging from the drop (cross) port `O₁`.
    pub drop: PulseTrain,
}

/// A cascaded double-MRR add/drop filter tuned to one wavelength.
#[derive(Debug, Clone, PartialEq)]
pub struct DoubleMrrFilter {
    radius: Length,
    energy_per_bit: Energy,
}

impl DoubleMrrFilter {
    /// Creates a filter with explicit ring radius and per-bit drive energy.
    #[must_use]
    pub fn new(radius: Length, energy_per_bit: Energy) -> Self {
        Self {
            radius,
            energy_per_bit,
        }
    }

    /// Ring radius.
    #[must_use]
    pub fn radius(&self) -> Length {
        self.radius
    }

    /// Electrical drive energy per modulated bit.
    #[must_use]
    pub fn energy_per_bit(&self) -> Energy {
        self.energy_per_bit
    }

    /// The S-shaped path length through both rings: two half-circumferences,
    /// i.e. one full circumference `2πr` (paper §IV-A2).
    #[must_use]
    pub fn s_path_length(&self) -> Length {
        Length::new(2.0 * std::f64::consts::PI * self.radius.value())
    }

    /// Propagation delay through the filter (paper Eq. 7): `d · n_Si / c`,
    /// ≈ 0.547 ps for the default 7.5 µm rings.
    #[must_use]
    pub fn s_path_delay(&self) -> Time {
        constants::silicon_propagation_delay(self.s_path_length())
    }

    /// Footprint of the double-ring structure. Each ring occupies a
    /// `(2r)²` bounding box and the two rings sit side by side.
    #[must_use]
    pub fn area(&self) -> Area {
        let d = Length::new(2.0 * self.radius.value());
        Area::new(2.0 * (d * d).value())
    }

    /// Routes `input` (arriving on `I₀` at this filter's resonant
    /// wavelength) according to the drive state.
    #[must_use]
    pub fn route(&self, input: &PulseTrain, state: MrrState) -> MrrOutputs {
        match state {
            MrrState::Bar => MrrOutputs {
                through: input.clone(),
                drop: PulseTrain::dark(input.len()),
            },
            MrrState::Cross => MrrOutputs {
                through: PulseTrain::dark(input.len()),
                drop: input.clone(),
            },
        }
    }

    /// The optical AND of an incoming bit-train with one synapse bit: the
    /// drop-port output when the drive encodes `synapse_bit`.
    ///
    /// # Examples
    ///
    /// ```
    /// use pixel_photonics::mrr::DoubleMrrFilter;
    /// use pixel_photonics::signal::PulseTrain;
    ///
    /// let filter = DoubleMrrFilter::default();
    /// let neuron = PulseTrain::from_bits(0b0110, 4);
    /// assert_eq!(filter.and(&neuron, true).to_bits(), Some(0b0110));
    /// assert_eq!(filter.and(&neuron, false).to_bits(), Some(0));
    /// ```
    #[must_use]
    pub fn and(&self, neuron: &PulseTrain, synapse_bit: bool) -> PulseTrain {
        self.route(neuron, MrrState::from_bit(synapse_bit)).drop
    }

    /// [`Self::and`] into a reused output train: the drop port either
    /// mirrors the neuron train (cross state) or stays dark for its full
    /// length (bar state), so the gate needs no fresh allocation.
    pub fn and_into(&self, neuron: &PulseTrain, synapse_bit: bool, out: &mut PulseTrain) {
        if synapse_bit {
            out.copy_from(neuron);
        } else {
            out.set_dark(neuron.len());
        }
    }

    /// Drive energy to stream `bits` bit-slots through the filter for
    /// `cycles` cycles (the paper's worked example multiplies MRR count ×
    /// 500 fJ × bits × cycles).
    #[must_use]
    pub fn modulation_energy(&self, bits: usize, cycles: usize) -> Energy {
        #[allow(clippy::cast_precision_loss)]
        let slots = (bits * cycles) as f64;
        // One filter = two rings, both driven.
        self.energy_per_bit * 2.0 * slots
    }
}

impl Default for DoubleMrrFilter {
    /// Paper defaults: 7.5 µm radius rings, 100 fJ/bit drive.
    fn default() -> Self {
        Self::new(constants::mrr_radius(), constants::mrr_energy_per_bit())
    }
}

/// A bank of double-MRR filters forming one synapse lane: one filter per
/// wavelength, all driven by the same synapse bit (paper §III-A: "the
/// entire neuron datum is checked against a single synapse bit").
#[derive(Debug, Clone, PartialEq)]
pub struct SynapseLaneFilters {
    filters: Vec<DoubleMrrFilter>,
}

impl SynapseLaneFilters {
    /// Creates a lane with `wavelengths` identical filters.
    #[must_use]
    pub fn uniform(wavelengths: usize, filter: DoubleMrrFilter) -> Self {
        Self {
            filters: vec![filter; wavelengths],
        }
    }

    /// Number of wavelengths this lane filters.
    #[must_use]
    pub fn wavelength_count(&self) -> usize {
        self.filters.len()
    }

    /// Total ring count (2 per double filter).
    #[must_use]
    pub fn ring_count(&self) -> usize {
        self.filters.len() * 2
    }

    /// ANDs each per-wavelength neuron train against `synapse_bit`.
    ///
    /// # Panics
    ///
    /// Panics if `neurons.len()` differs from the lane's wavelength count.
    #[must_use]
    pub fn and_all(&self, neurons: &[PulseTrain], synapse_bit: bool) -> Vec<PulseTrain> {
        assert_eq!(
            neurons.len(),
            self.filters.len(),
            "one neuron train per wavelength"
        );
        self.filters
            .iter()
            .zip(neurons)
            .map(|(f, n)| f.and(n, synapse_bit))
            .collect()
    }

    /// Aggregate footprint of the lane's rings.
    #[must_use]
    pub fn area(&self) -> Area {
        Area::new(self.filters.iter().map(|f| f.area().value()).sum())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eq7_delay_matches_paper() {
        let f = DoubleMrrFilter::default();
        assert!((f.s_path_length().as_micrometres() - 47.1).abs() < 0.1);
        assert!((f.s_path_delay().as_picos() - 0.547).abs() < 0.005);
    }

    #[test]
    fn bar_state_passes_through() {
        let f = DoubleMrrFilter::default();
        let input = PulseTrain::from_bits(0b1010, 4);
        let out = f.route(&input, MrrState::Bar);
        assert_eq!(out.through.to_bits(), Some(0b1010));
        assert_eq!(out.drop.to_bits(), Some(0));
    }

    #[test]
    fn cross_state_drops_signal() {
        let f = DoubleMrrFilter::default();
        let input = PulseTrain::from_bits(0b1010, 4);
        let out = f.route(&input, MrrState::Cross);
        assert_eq!(out.through.to_bits(), Some(0));
        assert_eq!(out.drop.to_bits(), Some(0b1010));
    }

    #[test]
    fn and_into_matches_and() {
        let f = DoubleMrrFilter::default();
        let neuron = PulseTrain::from_bits(0b1010, 4);
        let mut out = PulseTrain::from_bits(0b1, 1); // stale scratch
        for gate in [true, false] {
            f.and_into(&neuron, gate, &mut out);
            assert_eq!(out, f.and(&neuron, gate), "gate={gate}");
        }
    }

    #[test]
    fn and_truth_table() {
        let f = DoubleMrrFilter::default();
        // A=1, B=1 → 1 ; all other combinations → 0 (paper §II-A1).
        for (a, b, y) in [
            (1u64, true, 1u64),
            (1, false, 0),
            (0, true, 0),
            (0, false, 0),
        ] {
            let out = f.and(&PulseTrain::from_bits(a, 1), b);
            assert_eq!(out.to_bits(), Some(y), "A={a} B={b}");
        }
    }

    #[test]
    fn and_applies_to_whole_word() {
        let f = DoubleMrrFilter::default();
        let neuron = PulseTrain::from_bits(0b0110, 4);
        assert_eq!(f.and(&neuron, true).to_bits(), Some(0b0110));
        assert_eq!(f.and(&neuron, false).to_bits(), Some(0));
    }

    #[test]
    fn worked_example_energy() {
        // Paper §IV-C: 128 MRRs × 500 fJ × 4 bits × 4 cycles = 1.024 nJ.
        // 128 rings = 64 double filters; per filter: 2 × 500 fJ × 16 slots.
        let f = DoubleMrrFilter::new(
            constants::mrr_radius(),
            constants::mrr_worked_example_energy(),
        );
        let per_filter = f.modulation_energy(4, 4);
        let total = per_filter * 64.0;
        assert!((total.as_nanojoules() - 1.024).abs() < 1e-9, "{total}");
    }

    #[test]
    fn lane_filters_and_each_wavelength() {
        let lane = SynapseLaneFilters::uniform(4, DoubleMrrFilter::default());
        assert_eq!(lane.ring_count(), 8);
        let neurons: Vec<_> = [2u64, 4, 6, 9]
            .iter()
            .map(|&v| PulseTrain::from_bits(v, 4))
            .collect();
        let on = lane.and_all(&neurons, true);
        let off = lane.and_all(&neurons, false);
        for (i, &v) in [2u64, 4, 6, 9].iter().enumerate() {
            assert_eq!(on[i].to_bits(), Some(v));
            assert_eq!(off[i].to_bits(), Some(0));
        }
    }

    #[test]
    #[should_panic(expected = "one neuron train per wavelength")]
    fn lane_rejects_wrong_arity() {
        let lane = SynapseLaneFilters::uniform(4, DoubleMrrFilter::default());
        let _ = lane.and_all(&[PulseTrain::from_bits(1, 4)], true);
    }

    #[test]
    fn area_scales_with_radius() {
        let small = DoubleMrrFilter::new(
            Length::from_micrometres(5.0),
            Energy::from_femtojoules(500.0),
        );
        let big = DoubleMrrFilter::default();
        assert!(big.area().value() > small.area().value());
        // 7.5 µm radius ⇒ 2·(15 µm)² = 450 µm².
        assert!((big.area().as_square_micrometres() - 450.0).abs() < 1e-6);
    }
}
