//! Physical constants and paper-quoted device parameters.

use crate::units::{Energy, Length, Time};

/// Speed of light in vacuum \[m/s\].
pub const SPEED_OF_LIGHT: f64 = 299_792_458.0;

/// Refractive index of silicon at 1550 nm (paper §IV-A2).
pub const N_SILICON: f64 = 3.48;

/// Operating wavelength of the photonic layer \[m\] (C-band, 1550 nm).
pub const OPERATING_WAVELENGTH: f64 = 1550e-9;

/// Group velocity of light in a silicon waveguide \[m/s\]: `c / n_Si`.
#[must_use]
pub fn silicon_group_velocity() -> f64 {
    SPEED_OF_LIGHT / N_SILICON
}

/// Propagation delay through `length` of silicon (Eq. 7 form: `d · n_Si/c`).
#[must_use]
pub fn silicon_propagation_delay(length: Length) -> Time {
    Time::new(length.value() * N_SILICON / SPEED_OF_LIGHT)
}

/// Path length light covers in silicon during `time`.
#[must_use]
pub fn silicon_propagation_length(time: Time) -> Length {
    Length::new(time.value() * SPEED_OF_LIGHT / N_SILICON)
}

/// MRR radius quoted by the paper [µm → m] (§II-A1, 7.5 µm).
#[must_use]
pub fn mrr_radius() -> Length {
    Length::from_micrometres(7.5)
}

/// MRR modulation energy per bit-slot. The paper's device citation (§II-A1,
/// Zheng et al.) quotes ≤100 fJ/bit, which is also the value that makes the
/// Table II optical-multiply energies consistent; the §IV-C worked example
/// instead uses [`mrr_worked_example_energy`] (see DESIGN.md §6).
#[must_use]
pub fn mrr_energy_per_bit() -> Energy {
    Energy::from_femtojoules(100.0)
}

/// The 500 fJ per MRR per bit-slot figure used by the paper's §IV-C worked
/// example ("128 × 500 fJ × 4 bits × 4 cycles = 1.024 nJ").
#[must_use]
pub fn mrr_worked_example_energy() -> Energy {
    Energy::from_femtojoules(500.0)
}

/// MZI modulation energy per bit (§IV-A2, 32.4 fJ/bit from Ding et al.).
#[must_use]
pub fn mzi_energy_per_bit() -> Energy {
    Energy::from_femtojoules(32.4)
}

/// MZI phase-shifter arm length (§IV-A2, 2 mm).
#[must_use]
pub fn mzi_arm_length() -> Length {
    Length::from_millimetres(2.0)
}

/// Silicon waveguide pitch (§II-A3, 5.5 µm).
#[must_use]
pub fn waveguide_pitch() -> Length {
    Length::from_micrometres(5.5)
}

/// Waveguide propagation delay per unit length (§II-A3, 10.45 ps/mm).
pub const WAVEGUIDE_DELAY_PS_PER_MM: f64 = 10.45;

/// Waveguide attenuation (§II-A3, 1.3 dB/cm).
pub const WAVEGUIDE_LOSS_DB_PER_CM: f64 = 1.3;

/// Optical clock frequency used throughout the evaluation \[Hz\] (10 GHz).
pub const OPTICAL_CLOCK_HZ: f64 = 10.0e9;

/// Electrical clock frequency used throughout the evaluation \[Hz\] (1 GHz).
pub const ELECTRICAL_CLOCK_HZ: f64 = 1.0e9;

/// Maximum wavelengths per on-chip laser channel (§II-A3, 128).
pub const MAX_WAVELENGTHS_PER_CHANNEL: usize = 128;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_velocity_is_c_over_n() {
        let v = silicon_group_velocity();
        assert!((v - SPEED_OF_LIGHT / 3.48).abs() < 1.0);
    }

    #[test]
    fn eq7_mrr_s_path_delay() {
        // Paper Eq. 7: d = 2π·7.5 µm ≈ 47.1 µm ⇒ t ≈ 0.547 ps.
        let d = Length::from_micrometres(2.0 * std::f64::consts::PI * 7.5);
        let t = silicon_propagation_delay(d);
        assert!((t.as_picos() - 0.547).abs() < 0.005, "got {}", t.as_picos());
    }

    #[test]
    fn propagation_round_trip() {
        let t = Time::from_picos(100.0);
        let d = silicon_propagation_length(t);
        let t2 = silicon_propagation_delay(d);
        assert!((t2.as_picos() - 100.0).abs() < 1e-9);
    }

    #[test]
    fn paper_quoted_defaults() {
        assert!((mrr_radius().as_micrometres() - 7.5).abs() < 1e-12);
        assert!((mrr_energy_per_bit().as_femtojoules() - 100.0).abs() < 1e-9);
        assert!((mrr_worked_example_energy().as_femtojoules() - 500.0).abs() < 1e-9);
        assert!((mzi_energy_per_bit().as_femtojoules() - 32.4).abs() < 1e-9);
        assert!((mzi_arm_length().as_millimetres() - 2.0).abs() < 1e-12);
    }
}
