//! Mach-Zehnder interferometers and the delay-matched accumulator chain.
//!
//! Paper §II-A2: an MZI splits two input beams into two phase-shifting arms
//! (`φ_upper`, `φ_lower`) and recombines them. Its ideal transfer matrix
//! (Eq. 1) is
//!
//! ```text
//! h = j·e^{jΔ} · | sin θ   cos θ |        θ = (φ_upper − φ_lower)/2
//!                | cos θ  −sin θ |        Δ = (φ_upper + φ_lower)/2
//! ```
//!
//! (The paper's Eq. 3 prints Δ with the same difference formula as θ — a
//! typo; the standard result, and the one that makes Eq. 1 unitary and
//! consistent with the quoted bar/cross settings, uses the *sum*.)
//!
//! §III-B: cascading MZIs with the inter-stage path length of Eq. 8/9 delays
//! a pulse train by exactly one bit period between stages, so the chain
//! performs optical shift-accumulation: slot-aligned pulses add in amplitude.

use crate::complex::Complex;
use crate::constants::{self, SPEED_OF_LIGHT};
use crate::signal::PulseTrain;
use crate::units::{Area, Energy, Length, Time};

/// A single Mach-Zehnder interferometer with two phase-shifting arms.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Mzi {
    phi_upper: f64,
    phi_lower: f64,
    arm_length: Length,
    energy_per_bit: Energy,
}

impl Mzi {
    /// Creates an MZI with the given arm phase shifts (radians).
    #[must_use]
    pub fn new(phi_upper: f64, phi_lower: f64) -> Self {
        Self {
            phi_upper,
            phi_lower,
            arm_length: constants::mzi_arm_length(),
            energy_per_bit: constants::mzi_energy_per_bit(),
        }
    }

    /// Bar-state switch: `φ_upper = 0, φ_lower = π` (Fig. 1d).
    #[must_use]
    pub fn bar() -> Self {
        Self::new(0.0, std::f64::consts::PI)
    }

    /// Cross-state switch: `φ_upper = φ_lower = π/2` (Fig. 1e).
    #[must_use]
    pub fn cross() -> Self {
        Self::new(std::f64::consts::FRAC_PI_2, std::f64::consts::FRAC_PI_2)
    }

    /// Tunable coupler with splitting angle `θ ∈ (0, π/2)` and zero common
    /// phase: combines both inputs onto one output (Fig. 1c/f).
    #[must_use]
    pub fn coupler(theta: f64) -> Self {
        Self::new(theta, -theta)
    }

    /// Upper-arm phase shift.
    #[must_use]
    pub fn phi_upper(&self) -> f64 {
        self.phi_upper
    }

    /// Lower-arm phase shift.
    #[must_use]
    pub fn phi_lower(&self) -> f64 {
        self.phi_lower
    }

    /// Splitting angle `θ = (φ_upper − φ_lower)/2` (Eq. 2).
    #[must_use]
    pub fn theta(&self) -> f64 {
        (self.phi_upper - self.phi_lower) / 2.0
    }

    /// Common phase `Δ = (φ_upper + φ_lower)/2` (Eq. 3, corrected; see
    /// module docs).
    #[must_use]
    pub fn delta(&self) -> f64 {
        (self.phi_upper + self.phi_lower) / 2.0
    }

    /// The 2×2 transfer matrix of Eq. 1, row-major:
    /// `[h00, h01, h10, h11]` mapping `(i₀, i₁) → (o₀, o₁)`.
    #[must_use]
    pub fn transfer_matrix(&self) -> [Complex; 4] {
        let theta = self.theta();
        let pre = Complex::J * Complex::phase(self.delta());
        let s = theta.sin();
        let c = theta.cos();
        [pre * s, pre * c, pre * c, pre * (-s)]
    }

    /// Applies the transfer matrix to the input field pair `(i₀, i₁)`.
    #[must_use]
    pub fn propagate(&self, i0: Complex, i1: Complex) -> (Complex, Complex) {
        let [h00, h01, h10, h11] = self.transfer_matrix();
        (h00 * i0 + h01 * i1, h10 * i0 + h11 * i1)
    }

    /// Power splitting ratio from `i₀` into `o₀` (`sin²θ`).
    #[must_use]
    pub fn bar_power_ratio(&self) -> f64 {
        self.theta().sin().powi(2)
    }

    /// Arm length of the phase shifters.
    #[must_use]
    pub fn arm_length(&self) -> Length {
        self.arm_length
    }

    /// Propagation delay through the device arms.
    #[must_use]
    pub fn propagation_delay(&self) -> Time {
        constants::silicon_propagation_delay(self.arm_length)
    }

    /// Modulation energy per bit slot routed through the device.
    #[must_use]
    pub fn energy_per_bit(&self) -> Energy {
        self.energy_per_bit
    }

    /// Device footprint: arm length × one waveguide pitch per arm.
    #[must_use]
    pub fn area(&self) -> Area {
        let width = Length::new(2.0 * constants::waveguide_pitch().value());
        self.arm_length * width
    }

    /// Checks unitarity of the transfer matrix (‖h·h†−I‖ < tol).
    #[must_use]
    pub fn is_unitary(&self, tol: f64) -> bool {
        let [a, b, c, d] = self.transfer_matrix();
        let m00 = a * a.conj() + b * b.conj();
        let m01 = a * c.conj() + b * d.conj();
        let m11 = c * c.conj() + d * d.conj();
        (m00 - Complex::ONE).norm() < tol && m01.norm() < tol && (m11 - Complex::ONE).norm() < tol
    }
}

impl Default for Mzi {
    /// A balanced 50/50 coupler.
    fn default() -> Self {
        Self::coupler(std::f64::consts::FRAC_PI_4)
    }
}

/// A cascade of MZIs whose inter-stage paths are delay-matched to the
/// optical bit period, forming an optical shift-accumulator (paper §III-B).
#[derive(Debug, Clone, PartialEq)]
pub struct MziChain {
    stages: usize,
    bit_period: Time,
    inter_stage_path: Length,
}

impl MziChain {
    /// Builds a chain of `stages` MZIs delay-matched to an optical clock of
    /// `optical_clock_hz`. The inter-stage path implements Eq. 9:
    /// `d_path = c/(n_Si·f_o) − d_MZI`.
    ///
    /// # Panics
    ///
    /// Panics if `stages == 0`, if the clock is not positive, or if the
    /// clock is so fast that the MZI itself is longer than one bit period.
    #[must_use]
    pub fn delay_matched(stages: usize, optical_clock_hz: f64) -> Self {
        assert!(stages > 0, "chain needs at least one stage");
        assert!(optical_clock_hz > 0.0, "optical clock must be positive");
        let bit_period = Time::new(1.0 / optical_clock_hz);
        let total = SPEED_OF_LIGHT / (constants::N_SILICON * optical_clock_hz);
        let path = total - constants::mzi_arm_length().value();
        assert!(
            path > 0.0,
            "optical clock too fast for delay matching: MZI longer than one bit period"
        );
        Self {
            stages,
            bit_period,
            inter_stage_path: Length::new(path),
        }
    }

    /// Number of MZI stages.
    #[must_use]
    pub fn stages(&self) -> usize {
        self.stages
    }

    /// One optical bit period.
    #[must_use]
    pub fn bit_period(&self) -> Time {
        self.bit_period
    }

    /// Inter-stage connecting path length (Eq. 9), ≈ 6.6 mm at 10 GHz with
    /// the paper's constants (the paper rounds to 6.77 mm).
    #[must_use]
    pub fn inter_stage_spacing_m(&self) -> f64 {
        self.inter_stage_path.value()
    }

    /// Total optical path: `n·d_MZI + (n−1)·d_path` (paper §IV-A2).
    #[must_use]
    pub fn total_length(&self) -> Length {
        #[allow(clippy::cast_precision_loss)]
        let n = self.stages as f64;
        Length::new(
            n * constants::mzi_arm_length().value() + (n - 1.0) * self.inter_stage_path.value(),
        )
    }

    /// Total propagation delay through the chain (Eq. 10): ≈ 0.736 ns for
    /// 8 stages at 10 GHz.
    #[must_use]
    pub fn total_propagation_delay(&self) -> Time {
        constants::silicon_propagation_delay(self.total_length())
    }

    /// Accumulates per-stage pulse trains optically.
    ///
    /// `inputs[k]` enters stage `k`'s `i₀` port; each stage's output travels
    /// one delay-matched path to the next stage's `i₁`, so `inputs[k]` is
    /// delayed by `k` bit slots before superposing. The result is a
    /// multi-level train whose positional value is `Σ_k value(inputs[k])·2^k`.
    ///
    /// # Examples
    ///
    /// Optical shift-accumulate of three partial products:
    ///
    /// ```
    /// use pixel_photonics::mzi::MziChain;
    /// use pixel_photonics::signal::PulseTrain;
    ///
    /// let chain = MziChain::delay_matched(3, 10.0e9);
    /// let inputs: Vec<_> = [5u64, 3, 1].iter()
    ///     .map(|&v| PulseTrain::from_bits(v, 3))
    ///     .collect();
    /// let out = chain.accumulate(&inputs);
    /// assert_eq!(out.positional_value(), 5 + 3 * 2 + 4); // Σ vₖ·2ᵏ
    /// ```
    ///
    /// # Panics
    ///
    /// Panics if more inputs than stages are supplied.
    #[must_use]
    pub fn accumulate(&self, inputs: &[PulseTrain]) -> PulseTrain {
        let mut out = PulseTrain::new();
        self.accumulate_into(inputs, &mut out);
        out
    }

    /// [`Self::accumulate`] into a reused output train (cleared first):
    /// slot-by-slot amplitude addition in stage order, so the result is
    /// bitwise identical to the allocating form.
    ///
    /// # Panics
    ///
    /// Panics if more inputs than stages are supplied.
    pub fn accumulate_into(&self, inputs: &[PulseTrain], out: &mut PulseTrain) {
        assert!(
            inputs.len() <= self.stages,
            "chain has {} stages but {} inputs were supplied",
            self.stages,
            inputs.len()
        );
        out.set_dark(0);
        for (k, train) in inputs.iter().enumerate() {
            out.add_shifted(train, k);
        }
    }

    /// Modulation energy for routing trains with `total_pulse_slots` slots
    /// through the chain.
    #[must_use]
    pub fn modulation_energy(&self, total_pulse_slots: usize) -> Energy {
        #[allow(clippy::cast_precision_loss)]
        let slots = total_pulse_slots as f64;
        constants::mzi_energy_per_bit() * slots
    }

    /// Total chip area of the chain's MZIs (inter-stage waveguide folded on
    /// top of the device pitch).
    #[must_use]
    pub fn area(&self) -> Area {
        let per_stage = Mzi::default().area();
        let routing = self.inter_stage_path * constants::waveguide_pitch();
        #[allow(clippy::cast_precision_loss)]
        let n = self.stages as f64;
        Area::new(n * per_stage.value() + (n - 1.0).max(0.0) * routing.value())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::FRAC_PI_4;

    #[test]
    fn bar_state_routes_straight() {
        let mzi = Mzi::bar();
        let (o0, o1) = mzi.propagate(Complex::ONE, Complex::ZERO);
        assert!((o0.norm_sqr() - 1.0).abs() < 1e-12, "bar keeps power on o0");
        assert!(o1.norm_sqr() < 1e-12);
    }

    #[test]
    fn cross_state_routes_across() {
        let mzi = Mzi::cross();
        let (o0, o1) = mzi.propagate(Complex::ONE, Complex::ZERO);
        assert!(o0.norm_sqr() < 1e-12);
        assert!(
            (o1.norm_sqr() - 1.0).abs() < 1e-12,
            "cross moves power to o1"
        );
    }

    #[test]
    fn coupler_splits_power() {
        let mzi = Mzi::coupler(FRAC_PI_4);
        let (o0, o1) = mzi.propagate(Complex::ONE, Complex::ZERO);
        assert!((o0.norm_sqr() - 0.5).abs() < 1e-12);
        assert!((o1.norm_sqr() - 0.5).abs() < 1e-12);
        assert!((mzi.bar_power_ratio() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn transfer_matrix_is_unitary_for_any_phases() {
        for (up, low) in [(0.0, 0.0), (0.3, 1.2), (2.0, -0.7), (3.1, 3.1)] {
            assert!(Mzi::new(up, low).is_unitary(1e-9), "φ=({up},{low})");
        }
    }

    #[test]
    fn power_is_conserved() {
        let mzi = Mzi::new(0.8, 0.3);
        let i0 = Complex::new(0.6, 0.2);
        let i1 = Complex::new(-0.1, 0.9);
        let (o0, o1) = mzi.propagate(i0, i1);
        let pin = i0.norm_sqr() + i1.norm_sqr();
        let pout = o0.norm_sqr() + o1.norm_sqr();
        assert!((pin - pout).abs() < 1e-12);
    }

    #[test]
    fn eq9_path_length_at_10ghz() {
        let chain = MziChain::delay_matched(8, 10.0e9);
        // c/(n_Si · 10 GHz) − 2 mm ≈ 6.61 mm; the paper rounds to 6.77 mm.
        let mm = chain.inter_stage_spacing_m() * 1e3;
        assert!((mm - 6.61).abs() < 0.05, "got {mm} mm");
    }

    #[test]
    fn eq10_total_delay_matches_paper_within_rounding() {
        // Paper: (8·2 mm + 7·6.77 mm)·n_Si/c = 0.736 ns. With Eq. 9 exactly
        // satisfied the delay is (stages-1) bit periods + stage transits.
        let chain = MziChain::delay_matched(8, 10.0e9);
        let t = chain.total_propagation_delay().as_nanos();
        assert!((t - 0.736).abs() < 0.03, "got {t} ns");
    }

    #[test]
    fn delay_matching_is_exact_one_bit_period_per_stage() {
        let chain = MziChain::delay_matched(4, 10.0e9);
        let stage_plus_path = constants::silicon_propagation_delay(Length::new(
            constants::mzi_arm_length().value() + chain.inter_stage_spacing_m(),
        ));
        assert!((stage_plus_path.as_picos() - 100.0).abs() < 1e-6);
    }

    #[test]
    fn accumulate_computes_shifted_sum() {
        let chain = MziChain::delay_matched(4, 10.0e9);
        // inputs[k] weighted by 2^k: 3·1 + 1·2 + 0·4 + 1·8 = 13.
        let inputs: Vec<_> = [3u64, 1, 0, 1]
            .iter()
            .map(|&v| PulseTrain::from_bits(v, 4))
            .collect();
        let out = chain.accumulate(&inputs);
        assert_eq!(out.positional_value(), 13);
    }

    #[test]
    fn accumulate_produces_multilevel_amplitudes() {
        let chain = MziChain::delay_matched(3, 10.0e9);
        // All-ones on three stages: slot 2 receives 1 (k=0,bit2) + 1 (k=1,bit1)
        // + 1 (k=2,bit0) = 3 pulses.
        let inputs: Vec<_> = (0..3).map(|_| PulseTrain::from_bits(0b111, 3)).collect();
        let out = chain.accumulate(&inputs);
        assert_eq!(out.peak_level(), 3);
        assert_eq!(out.positional_value(), 7 + 14 + 28);
    }

    #[test]
    fn accumulate_into_matches_allocating_form() {
        let chain = MziChain::delay_matched(4, 10.0e9);
        let inputs: Vec<_> = [3u64, 1, 0, 1]
            .iter()
            .map(|&v| PulseTrain::from_bits(v, 4))
            .collect();
        let mut out = PulseTrain::from_bits(0b1111, 4); // stale scratch
        chain.accumulate_into(&inputs, &mut out);
        assert_eq!(out, chain.accumulate(&inputs));
        chain.accumulate_into(&[], &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn accumulate_empty_and_partial() {
        let chain = MziChain::delay_matched(4, 10.0e9);
        assert_eq!(chain.accumulate(&[]).positional_value(), 0);
        let one = [PulseTrain::from_bits(5, 3)];
        assert_eq!(chain.accumulate(&one).positional_value(), 5);
    }

    #[test]
    #[should_panic(expected = "stages")]
    fn accumulate_rejects_excess_inputs() {
        let chain = MziChain::delay_matched(2, 10.0e9);
        let inputs: Vec<_> = (0..3).map(|_| PulseTrain::from_bits(1, 1)).collect();
        let _ = chain.accumulate(&inputs);
    }

    #[test]
    fn chain_area_grows_with_stages() {
        let short = MziChain::delay_matched(2, 10.0e9);
        let long = MziChain::delay_matched(8, 10.0e9);
        assert!(long.area().value() > short.area().value());
        assert!(long.total_length().value() > short.total_length().value());
    }
}
