//! Ring-heater thermal tuning model.
//!
//! Paper §II-A1: MRRs are thermally sensitive; ring heaters hold each ring
//! on resonance. This module models the static tuning power as a function
//! of temperature offset, used as an optional overhead term in the energy
//! model (the paper folds it into laser/communication overhead).

use crate::spectral::RingSpectrum;
use crate::units::{Energy, Power, Time};

/// Thermal tuning model for a bank of microrings.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RingHeaterBank {
    rings: usize,
    tuning_power_per_ring: Power,
    duty_cycle: f64,
}

impl RingHeaterBank {
    /// Creates a heater bank for `rings` rings at `tuning_power_per_ring`
    /// average heater power, active `duty_cycle` of the time (0..=1).
    #[must_use]
    pub fn new(rings: usize, tuning_power_per_ring: Power, duty_cycle: f64) -> Self {
        Self {
            rings,
            tuning_power_per_ring,
            duty_cycle: duty_cycle.clamp(0.0, 1.0),
        }
    }

    /// Number of rings under thermal control.
    #[must_use]
    pub fn rings(&self) -> usize {
        self.rings
    }

    /// Average total heater power.
    #[must_use]
    pub fn total_power(&self) -> Power {
        #[allow(clippy::cast_precision_loss)]
        let n = self.rings as f64;
        self.tuning_power_per_ring * n * self.duty_cycle
    }

    /// Heater energy over `duration`.
    #[must_use]
    pub fn energy_over(&self, duration: Time) -> Energy {
        self.total_power() * duration
    }

    /// A bank with zero tuning power, modelling the athermal designs the
    /// paper cites as alternatives.
    #[must_use]
    pub fn athermal(rings: usize) -> Self {
        Self::new(rings, Power::ZERO, 0.0)
    }
}

impl Default for RingHeaterBank {
    /// 32 rings at a representative 0.1 mW/ring, always on.
    fn default() -> Self {
        Self::new(32, Power::from_milliwatts(0.1), 1.0)
    }
}

/// A proportional heater control loop holding one ring on resonance.
///
/// §II-A1: "ring heaters are used to ensure that the wavelength drift is
/// avoided". The controller observes the drop-port power of a probe at
/// the target wavelength and adjusts its heater drive; heating red-shifts
/// the resonance at the silicon thermo-optic rate, so the loop must
/// *pre-bias* the ring blue of target and heat into lock, then track
/// ambient changes.
#[derive(Debug, Clone, PartialEq)]
pub struct HeaterController {
    ring: RingSpectrum,
    target_m: f64,
    heater_kelvin: f64,
    gain: f64,
    max_heater_kelvin: f64,
}

/// Silicon thermo-optic drift used by the loop [m/K] (0.08 nm/K).
const DRIFT_M_PER_KELVIN: f64 = 0.08e-9;

impl HeaterController {
    /// Creates a controller locking `ring` to the probe wavelength
    /// `target_m`, with proportional `gain` (fraction of the observed
    /// kelvin-equivalent error corrected per step) and a heater able to
    /// add up to `max_heater_kelvin`.
    #[must_use]
    pub fn new(ring: RingSpectrum, target_m: f64, gain: f64, max_heater_kelvin: f64) -> Self {
        Self {
            ring,
            target_m,
            heater_kelvin: 0.0,
            gain: gain.clamp(0.0, 1.0),
            max_heater_kelvin,
        }
    }

    /// Current heater drive in kelvin above ambient.
    #[must_use]
    pub fn heater_kelvin(&self) -> f64 {
        self.heater_kelvin
    }

    /// The ring as currently tuned, under `ambient_kelvin` of external
    /// drift plus the heater's contribution.
    #[must_use]
    pub fn tuned_ring(&self, ambient_kelvin: f64) -> RingSpectrum {
        self.ring
            .thermally_shifted(ambient_kelvin + self.heater_kelvin)
    }

    /// Runs one control step against an ambient offset: observes the
    /// tuned resonance's offset from the target (in kelvin-equivalents)
    /// and applies a proportional correction, clamped to the heater range
    /// (a heater can only add heat).
    pub fn step(&mut self, ambient_kelvin: f64) {
        let tuned = self.tuned_ring(ambient_kelvin);
        let error_kelvin = (tuned.resonance() - self.target_m) / DRIFT_M_PER_KELVIN;
        self.heater_kelvin =
            (self.heater_kelvin - self.gain * error_kelvin).clamp(0.0, self.max_heater_kelvin);
    }

    /// Drop-port transmission at the target wavelength after `steps`
    /// control iterations at a fixed ambient offset.
    #[must_use]
    pub fn settle(&mut self, ambient_kelvin: f64, steps: usize) -> f64 {
        for _ in 0..steps {
            self.step(ambient_kelvin);
        }
        self.tuned_ring(ambient_kelvin)
            .drop_transmission(self.target_m)
    }

    /// Heater power at the current drive, at `mw_per_kelvin` efficiency.
    #[must_use]
    pub fn heater_power(&self, mw_per_kelvin: f64) -> Power {
        Power::from_milliwatts(self.heater_kelvin * mw_per_kelvin)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn total_power_scales_with_rings_and_duty() {
        let bank = RingHeaterBank::new(10, Power::from_milliwatts(0.1), 0.5);
        assert!((bank.total_power().as_milliwatts() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn athermal_draws_nothing() {
        let bank = RingHeaterBank::athermal(64);
        assert_eq!(bank.rings(), 64);
        assert!(bank.total_power().value().abs() < 1e-18);
        assert!(bank.energy_over(Time::from_millis(1.0)).value().abs() < 1e-18);
    }

    #[test]
    fn energy_over_duration() {
        let bank = RingHeaterBank::new(1, Power::from_milliwatts(1.0), 1.0);
        let e = bank.energy_over(Time::from_micros(1.0));
        assert!((e.as_nanojoules() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn duty_cycle_clamped() {
        let bank = RingHeaterBank::new(1, Power::from_milliwatts(1.0), 2.0);
        assert!((bank.total_power().as_milliwatts() - 1.0).abs() < 1e-12);
    }

    fn target() -> f64 {
        RingSpectrum::paper_default().resonance()
    }

    #[test]
    fn controller_locks_against_cooling_drift() {
        // Ambient cooling blue-shifts the ring (negative offset); the
        // heater compensates by heating it back on resonance.
        let mut ctl = HeaterController::new(RingSpectrum::paper_default(), target(), 0.5, 20.0);
        let transmission = ctl.settle(-4.0, 50);
        assert!(transmission > 0.999, "locked: {transmission}");
        assert!((ctl.heater_kelvin() - 4.0).abs() < 0.01, "heater ≈ +4 K");
    }

    #[test]
    fn controller_cannot_fight_heating_without_prebias() {
        // A heater can only add heat: positive ambient drift with no
        // pre-bias stays detuned (the reason real systems bias the ring
        // blue of target).
        let mut ctl = HeaterController::new(RingSpectrum::paper_default(), target(), 0.5, 20.0);
        let transmission = ctl.settle(4.0, 50);
        assert!(transmission < 0.1, "unlocked: {transmission}");
        assert_eq!(ctl.heater_kelvin(), 0.0);
    }

    #[test]
    fn prebias_gives_bidirectional_margin() {
        // Pre-biasing: fabricate the ring 5 K-equivalents blue of the
        // probe; the controller heats into lock and can then track
        // ambient swings of either sign within the bias.
        let prebiased = RingSpectrum::paper_default().thermally_shifted(-5.0);
        for ambient in [-3.0, 0.0, 3.0] {
            let mut ctl = HeaterController::new(prebiased, target(), 0.5, 20.0);
            let locked = ctl.settle(ambient, 60);
            assert!(locked > 0.99, "ambient {ambient}: {locked}");
            assert!((ctl.heater_kelvin() - (5.0 - ambient)).abs() < 0.05);
        }
    }

    #[test]
    fn heater_power_tracks_drive() {
        let mut ctl = HeaterController::new(RingSpectrum::paper_default(), target(), 0.5, 20.0);
        let _ = ctl.settle(-8.0, 60);
        let p = ctl.heater_power(0.1); // 0.1 mW/K
        assert!((p.as_milliwatts() - 0.8).abs() < 0.01, "{p}");
    }
}
