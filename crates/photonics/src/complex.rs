//! A minimal complex-number type for optical field amplitudes.
//!
//! The MZI transfer matrix (paper Eq. 1) operates on complex field
//! amplitudes. Implementing the handful of operations we need avoids an
//! external dependency (see DESIGN.md §7).

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub};

/// A complex number with `f64` components.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Complex {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex {
    /// The additive identity.
    pub const ZERO: Self = Self { re: 0.0, im: 0.0 };
    /// The multiplicative identity.
    pub const ONE: Self = Self { re: 1.0, im: 0.0 };
    /// The imaginary unit `j`.
    pub const J: Self = Self { re: 0.0, im: 1.0 };

    /// Creates a complex number from real and imaginary parts.
    #[must_use]
    pub const fn new(re: f64, im: f64) -> Self {
        Self { re, im }
    }

    /// Creates a complex number from polar form `r·e^{jθ}`.
    #[must_use]
    pub fn from_polar(r: f64, theta: f64) -> Self {
        Self::new(r * theta.cos(), r * theta.sin())
    }

    /// `e^{jθ}` — a pure phase factor.
    #[must_use]
    pub fn phase(theta: f64) -> Self {
        Self::from_polar(1.0, theta)
    }

    /// The squared magnitude `|z|²` (optical power for a field amplitude).
    #[must_use]
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// The magnitude `|z|`.
    #[must_use]
    pub fn norm(self) -> f64 {
        self.norm_sqr().sqrt()
    }

    /// The argument (phase angle) in radians.
    #[must_use]
    pub fn arg(self) -> f64 {
        self.im.atan2(self.re)
    }

    /// The complex conjugate.
    #[must_use]
    pub fn conj(self) -> Self {
        Self::new(self.re, -self.im)
    }

    /// Scales by a real factor.
    #[must_use]
    pub fn scale(self, k: f64) -> Self {
        Self::new(self.re * k, self.im * k)
    }
}

impl Add for Complex {
    type Output = Self;
    fn add(self, rhs: Self) -> Self {
        Self::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl AddAssign for Complex {
    fn add_assign(&mut self, rhs: Self) {
        self.re += rhs.re;
        self.im += rhs.im;
    }
}

impl Sub for Complex {
    type Output = Self;
    fn sub(self, rhs: Self) -> Self {
        Self::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl Mul for Complex {
    type Output = Self;
    fn mul(self, rhs: Self) -> Self {
        Self::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl Mul<f64> for Complex {
    type Output = Self;
    fn mul(self, rhs: f64) -> Self {
        self.scale(rhs)
    }
}

impl Div for Complex {
    type Output = Self;
    fn div(self, rhs: Self) -> Self {
        let d = rhs.norm_sqr();
        Self::new(
            (self.re * rhs.re + self.im * rhs.im) / d,
            (self.im * rhs.re - self.re * rhs.im) / d,
        )
    }
}

impl Neg for Complex {
    type Output = Self;
    fn neg(self) -> Self {
        Self::new(-self.re, -self.im)
    }
}

impl From<f64> for Complex {
    fn from(re: f64) -> Self {
        Self::new(re, 0.0)
    }
}

impl fmt::Display for Complex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.im >= 0.0 {
            write!(f, "{}+{}j", self.re, self.im)
        } else {
            write!(f, "{}{}j", self.re, self.im)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::{FRAC_PI_2, PI};

    fn close(a: Complex, b: Complex) -> bool {
        (a - b).norm() < 1e-12
    }

    #[test]
    fn basic_arithmetic() {
        let a = Complex::new(1.0, 2.0);
        let b = Complex::new(3.0, -1.0);
        assert!(close(a + b, Complex::new(4.0, 1.0)));
        assert!(close(a - b, Complex::new(-2.0, 3.0)));
        assert!(close(a * b, Complex::new(5.0, 5.0)));
        assert!(close((a * b) / b, a));
    }

    #[test]
    fn polar_and_phase() {
        let z = Complex::from_polar(2.0, FRAC_PI_2);
        assert!(close(z, Complex::new(0.0, 2.0)));
        assert!((Complex::phase(PI).re + 1.0).abs() < 1e-12);
        assert!((z.norm() - 2.0).abs() < 1e-12);
        assert!((z.arg() - FRAC_PI_2).abs() < 1e-12);
    }

    #[test]
    fn j_squared_is_minus_one() {
        assert!(close(Complex::J * Complex::J, -Complex::ONE));
    }

    #[test]
    fn conjugate_norm_invariant() {
        let z = Complex::new(3.0, 4.0);
        assert!((z.conj().norm() - 5.0).abs() < 1e-12);
        assert!((z.norm_sqr() - 25.0).abs() < 1e-12);
    }

    #[test]
    fn display_format() {
        assert_eq!(format!("{}", Complex::new(1.0, 2.0)), "1+2j");
        assert_eq!(format!("{}", Complex::new(1.0, -2.0)), "1-2j");
    }
}
