//! Wavelength-division multiplexing helpers and band planning.
//!
//! The OMAC fabric assigns each tile a block of wavelengths on a shared
//! multiple-write-single-read (MWSR) waveguide. This module provides the
//! band plan arithmetic ("OMAC 0 transmits λ₀–λ₃, OMAC 1 transmits λ₄–λ₇,
//! …", paper §III-A) and a mux/demux layer over [`WdmSignal`].

use crate::signal::{PulseTrain, WavelengthId, WdmSignal};

/// Error returned when a band plan request is out of range.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BandPlanError {
    /// The tile index requested.
    pub tile: usize,
    /// Number of tiles in the plan.
    pub tiles: usize,
}

impl std::fmt::Display for BandPlanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "tile {} out of range ({} tiles)", self.tile, self.tiles)
    }
}

impl std::error::Error for BandPlanError {}

/// Assigns contiguous wavelength blocks to tiles: tile `k` owns wavelengths
/// `[k·lanes, (k+1)·lanes)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BandPlan {
    tiles: usize,
    lanes: usize,
}

impl BandPlan {
    /// Creates a plan for `tiles` tiles with `lanes` wavelengths each.
    ///
    /// # Panics
    ///
    /// Panics if either argument is zero or the total exceeds `u16` range.
    #[must_use]
    pub fn new(tiles: usize, lanes: usize) -> Self {
        assert!(tiles > 0 && lanes > 0, "band plan must be non-empty");
        assert!(
            tiles * lanes <= usize::from(u16::MAX),
            "wavelength index overflow"
        );
        Self { tiles, lanes }
    }

    /// Number of tiles.
    #[must_use]
    pub fn tiles(&self) -> usize {
        self.tiles
    }

    /// Wavelengths per tile.
    #[must_use]
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// Total wavelengths in the plan.
    #[must_use]
    pub fn total_wavelengths(&self) -> usize {
        self.tiles * self.lanes
    }

    /// The wavelengths tile `tile` transmits on.
    ///
    /// # Errors
    ///
    /// Returns [`BandPlanError`] if `tile >= tiles`.
    pub fn tile_band(&self, tile: usize) -> Result<Vec<WavelengthId>, BandPlanError> {
        if tile >= self.tiles {
            return Err(BandPlanError {
                tile,
                tiles: self.tiles,
            });
        }
        let start = tile * self.lanes;
        Ok((start..start + self.lanes)
            .map(|i| {
                #[allow(clippy::cast_possible_truncation)]
                WavelengthId(i as u16)
            })
            .collect())
    }

    /// Which tile owns wavelength `id`, if any.
    #[must_use]
    pub fn owner(&self, id: WavelengthId) -> Option<usize> {
        let idx = id.index();
        (idx < self.total_wavelengths()).then_some(idx / self.lanes)
    }
}

/// Multiplexes each tile's per-lane trains onto the shared WDM medium
/// according to the band plan.
///
/// `per_tile[k][l]` is tile `k`'s train on its `l`-th lane.
///
/// # Errors
///
/// Returns [`BandPlanError`] if more tiles are supplied than the plan holds.
///
/// # Panics
///
/// Panics if a tile supplies more lanes than the plan allocates.
pub fn mux_tiles(
    plan: &BandPlan,
    per_tile: &[Vec<PulseTrain>],
) -> Result<WdmSignal, BandPlanError> {
    if per_tile.len() > plan.tiles() {
        return Err(BandPlanError {
            tile: per_tile.len() - 1,
            tiles: plan.tiles(),
        });
    }
    let mut signal = WdmSignal::new();
    for (tile, lanes) in per_tile.iter().enumerate() {
        let band = plan.tile_band(tile)?;
        assert!(
            lanes.len() <= band.len(),
            "tile {tile} supplied {} lanes but owns {}",
            lanes.len(),
            band.len()
        );
        for (id, train) in band.into_iter().zip(lanes.iter().cloned()) {
            signal.mux(id, train);
        }
    }
    Ok(signal)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_band_plan_example() {
        // §III-A: OMAC 0 → λ0–λ3, OMAC 1 → λ4–λ7, OMAC 2 → λ8–λ11, OMAC 3 → λ12–λ15.
        let plan = BandPlan::new(4, 4);
        assert_eq!(plan.total_wavelengths(), 16);
        let band3 = plan.tile_band(3).unwrap();
        assert_eq!(band3.first(), Some(&WavelengthId(12)));
        assert_eq!(band3.last(), Some(&WavelengthId(15)));
    }

    #[test]
    fn owner_inverse_of_band() {
        let plan = BandPlan::new(4, 4);
        for tile in 0..4 {
            for id in plan.tile_band(tile).unwrap() {
                assert_eq!(plan.owner(id), Some(tile));
            }
        }
        assert_eq!(plan.owner(WavelengthId(16)), None);
    }

    #[test]
    fn out_of_range_tile_is_error() {
        let plan = BandPlan::new(2, 4);
        let err = plan.tile_band(2).unwrap_err();
        assert_eq!(err.tile, 2);
        assert!(err.to_string().contains("2 tiles"));
    }

    #[test]
    fn mux_tiles_places_lanes_on_owned_wavelengths() {
        let plan = BandPlan::new(2, 2);
        let per_tile = vec![
            vec![PulseTrain::from_bits(1, 2), PulseTrain::from_bits(2, 2)],
            vec![PulseTrain::from_bits(3, 2), PulseTrain::from_bits(0, 2)],
        ];
        let sig = mux_tiles(&plan, &per_tile).unwrap();
        assert_eq!(sig.demux(WavelengthId(0)).to_bits(), Some(1));
        assert_eq!(sig.demux(WavelengthId(1)).to_bits(), Some(2));
        assert_eq!(sig.demux(WavelengthId(2)).to_bits(), Some(3));
        assert_eq!(sig.demux(WavelengthId(3)).to_bits(), Some(0));
    }

    #[test]
    fn mux_tiles_rejects_excess_tiles() {
        let plan = BandPlan::new(1, 1);
        let per_tile = vec![vec![PulseTrain::new()], vec![PulseTrain::new()]];
        assert!(mux_tiles(&plan, &per_tile).is_err());
    }
}
