//! Optical directed logic with microring switches.
//!
//! The paper's related work (§VI-B, refs. \[42\]–\[45\]) builds on
//! MRR-based directed logic: electrical operands set ring switches into
//! bar/cross states, and a continuous-wave probe routed through the
//! switch network emerges at an output port only for the input
//! combinations that satisfy the gate. This module implements the classic
//! constructions — AND, NAND, OR, NOR, XOR, XNOR — on pulse trains,
//! bit-parallel over operand words, each documented by the routing that
//! realizes it.

use crate::mrr::{DoubleMrrFilter, MrrState};
use crate::signal::PulseTrain;

/// A two-input directed-logic gate realized with MRR switches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Gate {
    /// Probe must couple through both rings: series cross-cross.
    And,
    /// Complement port of [`Gate::And`].
    Nand,
    /// Two parallel paths, either coupling delivers the probe.
    Or,
    /// Complement port of [`Gate::Or`].
    Nor,
    /// Ref. \[45\]'s construction: the probe reaches the output when
    /// exactly one ring is driven (bar→cross or cross→bar asymmetry).
    Xor,
    /// Complement port of [`Gate::Xor`].
    Xnor,
}

impl Gate {
    /// All six gates.
    pub const ALL: [Self; 6] = [
        Self::And,
        Self::Nand,
        Self::Or,
        Self::Nor,
        Self::Xor,
        Self::Xnor,
    ];

    /// Evaluates the gate on single bits through the switch routing.
    #[must_use]
    pub fn eval_bit(self, a: bool, b: bool) -> bool {
        // Each operand drives one double-MRR switch.
        let ring_a = MrrState::from_bit(a);
        let ring_b = MrrState::from_bit(b);
        match self {
            Self::And => {
                // Series: the probe must take the drop path of both.
                ring_a == MrrState::Cross && ring_b == MrrState::Cross
            }
            Self::Nand => !Self::And.eval_bit(a, b),
            Self::Or => {
                // Parallel paths: either drop path lights the output.
                ring_a == MrrState::Cross || ring_b == MrrState::Cross
            }
            Self::Nor => !Self::Or.eval_bit(a, b),
            Self::Xor => {
                // The probe crosses between two rails only when the two
                // switches disagree.
                ring_a != ring_b
            }
            Self::Xnor => !Self::Xor.eval_bit(a, b),
        }
    }

    /// Rings needed per bit of this gate (2 per double switch; complement
    /// gates read the other port of the same structure).
    #[must_use]
    pub fn rings_per_bit(self) -> usize {
        4
    }
}

/// Evaluates a gate bit-parallel over two operand words of `bits` bits,
/// physically: per bit, a probe pulse is routed through the operand-driven
/// switches and detected at the gate's output port.
///
/// # Panics
///
/// Panics if `bits` is zero or exceeds 64.
#[must_use]
pub fn eval_word(gate: Gate, a: u64, b: u64, bits: u32) -> u64 {
    assert!((1..=64).contains(&bits), "word width 1..=64");
    let mut out = 0u64;
    for i in 0..bits {
        let bit_a = (a >> i) & 1 == 1;
        let bit_b = (b >> i) & 1 == 1;
        if gate.eval_bit(bit_a, bit_b) {
            out |= 1 << i;
        }
    }
    out
}

/// Evaluates a gate over pulse-train operands (the trains must be binary).
/// Returns the output train, or `None` if an operand is not binary.
#[must_use]
pub fn eval_trains(gate: Gate, a: &PulseTrain, b: &PulseTrain) -> Option<PulseTrain> {
    let wa = a.to_bits()?;
    let wb = b.to_bits()?;
    let bits = a.len().max(b.len()).clamp(1, 64);
    #[allow(clippy::cast_possible_truncation)]
    let word = eval_word(gate, wa, wb, bits as u32);
    Some(PulseTrain::from_bits(word, bits))
}

/// The switch fabric for the paper's own primitive: the multiply path is
/// exactly `AND(neuron bit, synapse bit)` realized with the same bar/cross
/// routing — this helper ties the directed-logic view to the OMAC view.
#[must_use]
pub fn and_with_filter(
    filter: &DoubleMrrFilter,
    neuron: &PulseTrain,
    synapse_bit: bool,
) -> PulseTrain {
    filter.and(neuron, synapse_bit)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pixel_units::rng::SplitMix64;

    #[test]
    fn truth_tables() {
        let cases = [
            (Gate::And, [false, false, false, true]),
            (Gate::Nand, [true, true, true, false]),
            (Gate::Or, [false, true, true, true]),
            (Gate::Nor, [true, false, false, false]),
            (Gate::Xor, [false, true, true, false]),
            (Gate::Xnor, [true, false, false, true]),
        ];
        for (gate, expected) in cases {
            for (idx, &want) in expected.iter().enumerate() {
                let a = idx & 0b10 != 0;
                let b = idx & 0b01 != 0;
                assert_eq!(gate.eval_bit(a, b), want, "{gate:?}({a},{b})");
            }
        }
    }

    #[test]
    fn complement_pairs_use_the_same_structure() {
        for (g, gc) in [
            (Gate::And, Gate::Nand),
            (Gate::Or, Gate::Nor),
            (Gate::Xor, Gate::Xnor),
        ] {
            assert_eq!(g.rings_per_bit(), gc.rings_per_bit());
            for a in [false, true] {
                for b in [false, true] {
                    assert_ne!(g.eval_bit(a, b), gc.eval_bit(a, b));
                }
            }
        }
    }

    #[test]
    fn train_evaluation_round_trips() {
        let a = PulseTrain::from_bits(0b1100, 4);
        let b = PulseTrain::from_bits(0b1010, 4);
        let out = eval_trains(Gate::Xor, &a, &b).unwrap();
        assert_eq!(out.to_bits(), Some(0b0110));
        let nand = eval_trains(Gate::Nand, &a, &b).unwrap();
        assert_eq!(nand.to_bits(), Some(0b0111));
    }

    #[test]
    fn multilevel_operands_rejected() {
        let multi = PulseTrain::from_amplitudes(vec![2.0]);
        let ok = PulseTrain::from_bits(1, 1);
        assert!(eval_trains(Gate::And, &multi, &ok).is_none());
    }

    #[test]
    fn and_matches_the_omac_multiply_path() {
        let filter = DoubleMrrFilter::default();
        let neuron = PulseTrain::from_bits(0b0110, 4);
        // Synapse bit 1: the directed-logic AND of the word with all-ones.
        let via_filter = and_with_filter(&filter, &neuron, true);
        let via_gate = eval_trains(Gate::And, &neuron, &PulseTrain::from_bits(0xF, 4)).unwrap();
        assert_eq!(via_filter.to_bits(), via_gate.to_bits());
    }

    #[test]
    fn word_gates_match_boolean_ops() {
        let mut rng = SplitMix64::seed_from_u64(0xD1_9A7E);
        for _ in 0..128 {
            let a = rng.next_u64();
            let b = rng.next_u64();
            let bits = rng.range_u32(1, 64);
            let mask = if bits == 64 {
                u64::MAX
            } else {
                (1 << bits) - 1
            };
            let (am, bm) = (a & mask, b & mask);
            assert_eq!(eval_word(Gate::And, a, b, bits), am & bm);
            assert_eq!(eval_word(Gate::Or, a, b, bits), am | bm);
            assert_eq!(eval_word(Gate::Xor, a, b, bits), am ^ bm);
            assert_eq!(eval_word(Gate::Nand, a, b, bits), !(am & bm) & mask);
            assert_eq!(eval_word(Gate::Nor, a, b, bits), !(am | bm) & mask);
            assert_eq!(eval_word(Gate::Xnor, a, b, bits), !(am ^ bm) & mask);
        }
    }
}
