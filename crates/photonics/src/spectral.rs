//! Spectral (wavelength-domain) microring model.
//!
//! The logic-level [`crate::mrr`] model treats the double-MRR filter as an
//! ideal switch; this module supplies the underlying physics the paper's
//! device citations describe: Lorentzian through/drop responses around
//! resonance, free spectral range, Q factor, extinction ratio, and the
//! inter-channel crosstalk that bounds how densely WDM lanes can be
//! packed.

use crate::constants::{self, SPEED_OF_LIGHT};
use crate::units::Length;

/// Group index of a silicon microring (slightly above the material index
/// due to waveguide dispersion).
pub const GROUP_INDEX: f64 = 4.2;

/// A single microring resonator's spectral response.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RingSpectrum {
    radius: Length,
    resonance_m: f64,
    q_factor: f64,
}

impl RingSpectrum {
    /// Creates a ring of `radius` resonant at `resonance_m` (metres) with
    /// loaded quality factor `q_factor`.
    ///
    /// # Panics
    ///
    /// Panics if the resonance wavelength or Q is not positive.
    #[must_use]
    pub fn new(radius: Length, resonance_m: f64, q_factor: f64) -> Self {
        assert!(resonance_m > 0.0, "resonance must be positive");
        assert!(q_factor > 0.0, "Q must be positive");
        Self {
            radius,
            resonance_m,
            q_factor,
        }
    }

    /// The paper's ring (7.5 µm radius) at 1550 nm with a loaded Q of
    /// 10 000 — representative of the cited 25 Gb/s modulators.
    #[must_use]
    pub fn paper_default() -> Self {
        Self::new(
            constants::mrr_radius(),
            constants::OPERATING_WAVELENGTH,
            10_000.0,
        )
    }

    /// Resonance wavelength \[m\].
    #[must_use]
    pub fn resonance(&self) -> f64 {
        self.resonance_m
    }

    /// Loaded quality factor.
    #[must_use]
    pub fn q_factor(&self) -> f64 {
        self.q_factor
    }

    /// Free spectral range `FSR = λ²/(n_g·L)` \[m\], with `L = 2πr`.
    #[must_use]
    pub fn free_spectral_range(&self) -> f64 {
        let circumference = 2.0 * std::f64::consts::PI * self.radius.value();
        self.resonance_m * self.resonance_m / (GROUP_INDEX * circumference)
    }

    /// Full-width-half-maximum linewidth `λ/Q` \[m\].
    #[must_use]
    pub fn linewidth(&self) -> f64 {
        self.resonance_m / self.q_factor
    }

    /// Finesse: FSR / linewidth.
    #[must_use]
    pub fn finesse(&self) -> f64 {
        self.free_spectral_range() / self.linewidth()
    }

    /// Photon lifetime `Q·λ/(2πc)` \[s\].
    #[must_use]
    pub fn photon_lifetime(&self) -> f64 {
        self.q_factor * self.resonance_m / (2.0 * std::f64::consts::PI * SPEED_OF_LIGHT)
    }

    /// Drop-port power transmission at wavelength `lambda_m`: a Lorentzian
    /// of unit peak at resonance,
    /// `T_drop(δ) = 1 / (1 + (2δ/FWHM)²)` with `δ = λ − λ₀`.
    #[must_use]
    pub fn drop_transmission(&self, lambda_m: f64) -> f64 {
        let delta = lambda_m - self.resonance_m;
        let x = 2.0 * delta / self.linewidth();
        1.0 / (1.0 + x * x)
    }

    /// Through-port power transmission (energy conservation with the
    /// ideal lossless two-port: `T_thru = 1 − T_drop`).
    #[must_use]
    pub fn through_transmission(&self, lambda_m: f64) -> f64 {
        1.0 - self.drop_transmission(lambda_m)
    }

    /// Extinction ratio \[dB\] between on-resonance and `detuning_m` away.
    #[must_use]
    pub fn extinction_ratio_db(&self, detuning_m: f64) -> f64 {
        let on = self.drop_transmission(self.resonance_m);
        let off = self.drop_transmission(self.resonance_m + detuning_m);
        10.0 * (on / off).log10()
    }

    /// Returns a copy red-shifted by a temperature change \[K\], using the
    /// silicon thermo-optic drift of ≈0.08 nm/K at 1550 nm — the thermal
    /// sensitivity §II-A1's ring heaters exist to cancel.
    #[must_use]
    pub fn thermally_shifted(&self, delta_kelvin: f64) -> Self {
        let shift = 0.08e-9 * delta_kelvin;
        Self {
            resonance_m: self.resonance_m + shift,
            ..*self
        }
    }
}

/// Worst-case adjacent-channel crosstalk \[dB\] for rings on a WDM grid
/// with `channel_spacing_m` between resonances: the fraction of a
/// neighbour's power a ring erroneously drops.
#[must_use]
pub fn adjacent_channel_crosstalk_db(ring: &RingSpectrum, channel_spacing_m: f64) -> f64 {
    let leaked = ring.drop_transmission(ring.resonance() + channel_spacing_m);
    10.0 * leaked.log10()
}

/// The minimum WDM channel spacing \[m\] at which adjacent-channel
/// crosstalk stays below `max_crosstalk_db` (a negative dB figure).
///
/// # Panics
///
/// Panics if `max_crosstalk_db` is not negative.
#[must_use]
pub fn min_channel_spacing(ring: &RingSpectrum, max_crosstalk_db: f64) -> f64 {
    assert!(
        max_crosstalk_db < 0.0,
        "crosstalk bound must be negative dB"
    );
    // Invert the Lorentzian: T = 1/(1+x²) ≤ 10^(dB/10).
    let t = 10f64.powf(max_crosstalk_db / 10.0);
    let x = (1.0 / t - 1.0).sqrt();
    x * ring.linewidth() / 2.0
}

/// How many WDM channels fit in one FSR at the given crosstalk bound.
#[must_use]
pub fn channels_per_fsr(ring: &RingSpectrum, max_crosstalk_db: f64) -> usize {
    let spacing = min_channel_spacing(ring, max_crosstalk_db);
    #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
    {
        (ring.free_spectral_range() / spacing).floor() as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ring() -> RingSpectrum {
        RingSpectrum::paper_default()
    }

    #[test]
    fn unit_drop_on_resonance() {
        let r = ring();
        assert!((r.drop_transmission(r.resonance()) - 1.0).abs() < 1e-12);
        assert!(r.through_transmission(r.resonance()) < 1e-12);
    }

    #[test]
    fn half_power_at_half_linewidth() {
        let r = ring();
        let t = r.drop_transmission(r.resonance() + r.linewidth() / 2.0);
        assert!((t - 0.5).abs() < 1e-9);
    }

    #[test]
    fn fsr_for_paper_ring() {
        // FSR = λ²/(n_g·2πr) = 1550 nm² / (4.2 · 47.1 µm) ≈ 12.1 nm.
        let fsr_nm = ring().free_spectral_range() * 1e9;
        assert!((fsr_nm - 12.1).abs() < 0.3, "FSR {fsr_nm} nm");
    }

    #[test]
    fn linewidth_and_finesse() {
        let r = ring();
        assert!((r.linewidth() * 1e9 - 0.155).abs() < 1e-3); // λ/Q = 0.155 nm
        assert!(r.finesse() > 50.0 && r.finesse() < 100.0);
    }

    #[test]
    fn photon_lifetime_sub_cycle_at_10ghz() {
        // Q = 10⁴ at 1550 nm → τ ≈ 8.2 ps, under the 100 ps bit slot, so
        // the ring can modulate at the paper's 10 GHz.
        let tau_ps = ring().photon_lifetime() * 1e12;
        assert!((tau_ps - 8.2).abs() < 0.5, "τ = {tau_ps} ps");
    }

    #[test]
    fn extinction_grows_with_detuning() {
        let r = ring();
        let near = r.extinction_ratio_db(0.2e-9);
        let far = r.extinction_ratio_db(1.0e-9);
        assert!(far > near && near > 0.0);
    }

    #[test]
    fn thermal_drift_detunes_the_ring() {
        let r = ring();
        let hot = r.thermally_shifted(5.0); // +0.4 nm
        let t = hot.drop_transmission(r.resonance());
        assert!(t < 0.05, "5 K of drift kills the drop efficiency: {t}");
        // The heater-corrected ring (shift back) recovers.
        let corrected = hot.thermally_shifted(-5.0);
        assert!((corrected.drop_transmission(r.resonance()) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn crosstalk_bounds_channel_density() {
        let r = ring();
        // 100 GHz grid at 1550 nm ≈ 0.8 nm spacing.
        let xt = adjacent_channel_crosstalk_db(&r, 0.8e-9);
        assert!(xt < -20.0, "100 GHz grid crosstalk {xt} dB");
        let spacing = min_channel_spacing(&r, -20.0);
        assert!(spacing < 0.8e-9);
        // ≥ the paper's 128 wavelengths only with a higher-Q ring; the
        // default ring supports a few tens per FSR at −20 dB.
        let n = channels_per_fsr(&r, -20.0);
        assert!((10..=40).contains(&n), "channels/FSR {n}");
    }

    #[test]
    fn min_spacing_is_consistent_with_crosstalk() {
        let r = ring();
        for bound in [-15.0, -20.0, -30.0] {
            let spacing = min_channel_spacing(&r, bound);
            let xt = adjacent_channel_crosstalk_db(&r, spacing);
            assert!((xt - bound).abs() < 0.1, "bound {bound}: got {xt}");
        }
    }
}
