//! End-to-end photonic link budget.
//!
//! Combines laser, modulator, waveguide and detector models into the
//! per-bit energy and loss budget of one WDM home channel: the laser must
//! deliver enough power that, after modulator insertion loss and waveguide
//! attenuation, each pulse still clears the detector's sensitivity.

use crate::laser::FabryPerotLaser;
use crate::photodetector::Photodetector;
use crate::units::{Energy, Length, Power, Time};
use crate::waveguide::Waveguide;

/// Error returned when a link budget cannot close.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkBudgetError {
    /// Power arriving at the detector per pulse.
    pub received: Power,
    /// Detector sensitivity.
    pub required: Power,
}

impl std::fmt::Display for LinkBudgetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "link budget does not close: {:.3} µW received, {:.3} µW required",
            self.received.as_microwatts(),
            self.required.as_microwatts()
        )
    }
}

impl std::error::Error for LinkBudgetError {}

/// A point-to-point photonic link on one wavelength.
#[derive(Debug, Clone, PartialEq)]
pub struct PhotonicLink {
    laser: FabryPerotLaser,
    waveguide: Waveguide,
    detector: Photodetector,
    modulator_loss_db: f64,
    modulation_energy_per_bit: Energy,
    bit_period: Time,
}

impl PhotonicLink {
    /// Creates a link with the given components.
    #[must_use]
    pub fn new(
        laser: FabryPerotLaser,
        waveguide: Waveguide,
        detector: Photodetector,
        modulator_loss_db: f64,
        modulation_energy_per_bit: Energy,
        bit_period: Time,
    ) -> Self {
        Self {
            laser,
            waveguide,
            detector,
            modulator_loss_db,
            modulation_energy_per_bit,
            bit_period,
        }
    }

    /// A link with the paper's defaults: 10 GHz bit period, MRR modulator
    /// (500 fJ/bit, ~1 dB insertion loss), default laser and detector.
    #[must_use]
    pub fn paper_default(length: Length) -> Self {
        Self::new(
            FabryPerotLaser::default(),
            Waveguide::new(length),
            Photodetector::default(),
            1.0,
            crate::constants::mrr_energy_per_bit(),
            Time::new(1.0 / crate::constants::OPTICAL_CLOCK_HZ),
        )
    }

    /// The laser feeding the link.
    #[must_use]
    pub fn laser(&self) -> &FabryPerotLaser {
        &self.laser
    }

    /// The waveguide span.
    #[must_use]
    pub fn waveguide(&self) -> &Waveguide {
        &self.waveguide
    }

    /// The receiving detector.
    #[must_use]
    pub fn detector(&self) -> &Photodetector {
        &self.detector
    }

    /// Total link loss in dB (modulator + waveguide).
    #[must_use]
    pub fn total_loss_db(&self) -> f64 {
        self.modulator_loss_db + self.waveguide.loss_db()
    }

    /// Optical power arriving at the detector per wavelength.
    #[must_use]
    pub fn received_power(&self) -> Power {
        let linear = 10f64.powf(-self.total_loss_db() / 10.0);
        self.laser.power_per_wavelength() * linear
    }

    /// Verifies the budget closes (received power ≥ detector sensitivity).
    ///
    /// # Errors
    ///
    /// Returns [`LinkBudgetError`] when the received power is below the
    /// detector sensitivity.
    pub fn check_budget(&self) -> Result<Power, LinkBudgetError> {
        let received = self.received_power();
        if received < self.detector.sensitivity() {
            Err(LinkBudgetError {
                received,
                required: self.detector.sensitivity(),
            })
        } else {
            Ok(received)
        }
    }

    /// Minimum laser power per wavelength for the budget to close.
    #[must_use]
    pub fn required_laser_power(&self) -> Power {
        let linear = 10f64.powf(-self.total_loss_db() / 10.0);
        Power::new(self.detector.sensitivity().value() / linear)
    }

    /// One-way propagation latency.
    #[must_use]
    pub fn latency(&self) -> Time {
        self.waveguide.propagation_delay()
    }

    /// Energy to move `bits` bits across the link: modulation + detection +
    /// the laser's share of wall-plug power over the transmission time.
    #[must_use]
    pub fn transfer_energy(&self, bits: usize) -> Energy {
        #[allow(clippy::cast_precision_loss)]
        let n = bits as f64;
        let duration = Time::new(self.bit_period.value() * n);
        let laser_share = Energy::new(
            self.laser.electrical_power().value() / self.laser.wavelengths().max(1) as f64
                * duration.value(),
        );
        self.modulation_energy_per_bit * n + self.detector.energy_per_bit() * n + laser_share
    }

    /// Energy per bit at a given transfer size.
    #[must_use]
    pub fn energy_per_bit(&self, bits: usize) -> Energy {
        #[allow(clippy::cast_precision_loss)]
        let n = (bits.max(1)) as f64;
        Energy::new(self.transfer_energy(bits).value() / n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn short_link_budget_closes() {
        let link = PhotonicLink::paper_default(Length::from_millimetres(5.0));
        let received = link.check_budget().expect("budget should close");
        assert!(received >= link.detector().sensitivity());
    }

    #[test]
    fn long_link_budget_fails() {
        // 1 mW laser, −20 dBm sensitivity → 20 dB margin; 1 dB modulator +
        // 1.3 dB/cm means ~15 cm kills it.
        let link = PhotonicLink::paper_default(Length::from_centimetres(20.0));
        let err = link.check_budget().unwrap_err();
        assert!(err.received < err.required);
        assert!(err.to_string().contains("does not close"));
    }

    #[test]
    fn required_power_is_consistent_with_budget() {
        let link = PhotonicLink::paper_default(Length::from_centimetres(10.0));
        let required = link.required_laser_power();
        // Budget closes exactly when the laser supplies `required`.
        let margin_db =
            10.0 * (link.laser().power_per_wavelength().value() / required.value()).log10();
        let loss_margin =
            10.0 * (link.received_power().value() / link.detector().sensitivity().value()).log10();
        assert!((margin_db - loss_margin).abs() < 1e-9);
    }

    #[test]
    fn latency_comes_from_waveguide() {
        let link = PhotonicLink::paper_default(Length::from_millimetres(2.0));
        assert!((link.latency().as_picos() - 20.9).abs() < 1e-9);
    }

    #[test]
    fn transfer_energy_scales_superlinearly_never_sublinearly() {
        let link = PhotonicLink::paper_default(Length::from_millimetres(2.0));
        let e1 = link.transfer_energy(8);
        let e2 = link.transfer_energy(16);
        assert!((e2.value() - 2.0 * e1.value()).abs() < 1e-18);
        assert!(link.energy_per_bit(8).value() > 0.0);
    }
}
