//! Modulation formats and serialization: OOK vs PAM-4 line coding.
//!
//! The paper's designs modulate on-off-keyed (OOK) pulses — one bit per
//! optical slot. Multi-level pulse-amplitude modulation (PAM-4: two bits
//! per slot on four amplitude levels) is the standard way photonic links
//! double their bit rate at the same symbol rate, and the OO design
//! already pays for a comparator-ladder receiver that can resolve levels.
//! This module provides both serializers and deserializers over
//! [`PulseTrain`] plus their energy/latency trade, so the format becomes
//! an architecture knob.

use crate::signal::PulseTrain;
use crate::units::{Energy, Time};

/// A line-coding format for one wavelength.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Format {
    /// On-off keying: 1 bit per slot, levels {0, 1}.
    Ook,
    /// 4-level pulse-amplitude modulation: 2 bits per slot,
    /// levels {0, 1, 2, 3}.
    Pam4,
}

impl Format {
    /// Bits carried per optical slot.
    #[must_use]
    pub fn bits_per_slot(self) -> u32 {
        match self {
            Self::Ook => 1,
            Self::Pam4 => 2,
        }
    }

    /// Amplitude levels the receiver must resolve.
    #[must_use]
    pub fn levels(self) -> u32 {
        match self {
            Self::Ook => 2,
            Self::Pam4 => 4,
        }
    }

    /// Slots needed to carry `bits` bits.
    #[must_use]
    pub fn slots_for(self, bits: u32) -> u32 {
        bits.div_ceil(self.bits_per_slot())
    }
}

/// Serializes a word onto a pulse train in the given format, LSB-first.
///
/// # Examples
///
/// ```
/// use pixel_photonics::serdes::{deserialize, serialize, Format};
///
/// let t = serialize(Format::Pam4, 0b1101_0010, 8);
/// assert_eq!(t.len(), 4); // two bits per slot
/// assert_eq!(deserialize(Format::Pam4, &t), Ok(0b1101_0010));
/// ```
///
/// # Panics
///
/// Panics if `bits` is zero or exceeds 64.
#[must_use]
pub fn serialize(format: Format, word: u64, bits: u32) -> PulseTrain {
    assert!((1..=64).contains(&bits), "word width 1..=64");
    match format {
        Format::Ook => PulseTrain::from_bits(word, bits as usize),
        Format::Pam4 => {
            let slots = format.slots_for(bits);
            (0..slots)
                .map(|s| {
                    let symbol = (word >> (2 * s)) & 0b11;
                    #[allow(clippy::cast_precision_loss)]
                    {
                        symbol as f64
                    }
                })
                .collect()
        }
    }
}

/// Error returned when a train cannot be decoded in a format.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FormatError {
    /// Offending slot.
    pub slot: usize,
    /// Level observed.
    pub level: u32,
    /// Levels the format supports.
    pub max_level: u32,
}

impl std::fmt::Display for FormatError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "slot {} level {} exceeds the format's maximum {}",
            self.slot, self.level, self.max_level
        )
    }
}

impl std::error::Error for FormatError {}

/// Deserializes a train back into a word.
///
/// # Errors
///
/// Returns [`FormatError`] if a slot's level exceeds the format alphabet.
pub fn deserialize(format: Format, train: &PulseTrain) -> Result<u64, FormatError> {
    let mut word = 0u64;
    for (slot, level) in train.quantized_levels().into_iter().enumerate() {
        if level >= format.levels() {
            return Err(FormatError {
                slot,
                level,
                max_level: format.levels() - 1,
            });
        }
        let shift = slot as u32 * format.bits_per_slot();
        if shift < 64 {
            word |= u64::from(level) << shift;
        }
    }
    Ok(word)
}

/// Transmission time of a `bits`-bit word at `optical_clock_hz`.
#[must_use]
pub fn transmission_time(format: Format, bits: u32, optical_clock_hz: f64) -> Time {
    Time::new(f64::from(format.slots_for(bits)) / optical_clock_hz)
}

/// Modulator drive energy per word: every slot is driven; PAM levels are
/// synthesized with proportionally higher drive swing (level-weighted).
#[must_use]
pub fn modulation_energy(format: Format, bits: u32, energy_per_slot: Energy) -> Energy {
    let slots = f64::from(format.slots_for(bits));
    let swing = match format {
        Format::Ook => 1.0,
        // Mean drive of uniformly distributed 4-level symbols: (0+1+2+3)/4
        // normalized to OOK's 0.5 mean → 3×.
        Format::Pam4 => 3.0,
    };
    energy_per_slot * (slots * swing)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pixel_units::rng::SplitMix64;

    #[test]
    fn format_arithmetic() {
        assert_eq!(Format::Ook.slots_for(8), 8);
        assert_eq!(Format::Pam4.slots_for(8), 4);
        assert_eq!(Format::Pam4.slots_for(7), 4);
        assert_eq!(Format::Pam4.levels(), 4);
    }

    #[test]
    fn ook_round_trip_is_from_bits() {
        let t = serialize(Format::Ook, 0b1011, 4);
        assert_eq!(t, PulseTrain::from_bits(0b1011, 4));
        assert_eq!(deserialize(Format::Ook, &t).unwrap(), 0b1011);
    }

    #[test]
    fn pam4_packs_two_bits_per_slot() {
        // 0b11_01_00_10 → symbols (LSB pair first): 2, 0, 1, 3.
        let t = serialize(Format::Pam4, 0b1101_0010, 8);
        assert_eq!(t.len(), 4);
        assert_eq!(t.quantized_levels(), vec![2, 0, 1, 3]);
        assert_eq!(deserialize(Format::Pam4, &t).unwrap(), 0b1101_0010);
    }

    #[test]
    fn ook_rejects_multilevel() {
        let t = PulseTrain::from_amplitudes(vec![2.0]);
        let err = deserialize(Format::Ook, &t).unwrap_err();
        assert_eq!(err.max_level, 1);
        assert!(err.to_string().contains("level 2"));
        // PAM-4 decodes the same train happily.
        assert_eq!(deserialize(Format::Pam4, &t).unwrap(), 2);
    }

    #[test]
    fn pam4_halves_transmission_time() {
        let ook = transmission_time(Format::Ook, 16, 10.0e9);
        let pam = transmission_time(Format::Pam4, 16, 10.0e9);
        assert!((ook.value() / pam.value() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn pam4_costs_more_drive_energy() {
        let per_slot = Energy::from_femtojoules(100.0);
        let ook = modulation_energy(Format::Ook, 16, per_slot);
        let pam = modulation_energy(Format::Pam4, 16, per_slot);
        // Half the slots × 3× the swing = 1.5× the energy.
        assert!((pam.value() / ook.value() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn round_trip_any_word() {
        let mut rng = SplitMix64::seed_from_u64(0x5E2D);
        for _ in 0..256 {
            let word = rng.next_u64();
            let bits = rng.range_u32(1, 64);
            let masked = if bits == 64 {
                word
            } else {
                word & ((1 << bits) - 1)
            };
            for format in [Format::Ook, Format::Pam4] {
                let t = serialize(format, masked, bits);
                assert_eq!(deserialize(format, &t).unwrap(), masked, "bits={bits}");
            }
        }
    }
}
