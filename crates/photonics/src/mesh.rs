//! Programmable MZI meshes: universal linear optics.
//!
//! The paper's additive operation rests on D.A.B. Miller's result (its
//! refs. \[46\]–\[48\]) that cascaded, self-configured MZIs can implement any
//! linear transformation. This module supplies that substrate:
//!
//! * [`Unitary`] — a dense complex matrix with unitarity checks,
//! * [`MziMesh`] — a triangular (Reck-style) mesh of nearest-neighbour
//!   2×2 rotations (an MZI plus external phase shifters each) synthesized
//!   from an arbitrary target unitary by Givens elimination,
//! * [`BeamCoupler`] — Miller's self-aligning universal beam coupler: a
//!   chain of MZIs configured to funnel an arbitrary input mode vector
//!   into a single output port, the principle behind the OO design's
//!   optical accumulation.

use crate::complex::Complex;

/// A dense `n × n` complex matrix (row-major).
#[derive(Debug, Clone, PartialEq)]
pub struct Unitary {
    n: usize,
    data: Vec<Complex>,
}

impl Unitary {
    /// Creates a matrix from row-major entries.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != n²`.
    #[must_use]
    pub fn from_rows(n: usize, data: Vec<Complex>) -> Self {
        assert_eq!(data.len(), n * n, "need n² entries");
        Self { n, data }
    }

    /// The identity.
    #[must_use]
    pub fn identity(n: usize) -> Self {
        let mut m = Self {
            n,
            data: vec![Complex::ZERO; n * n],
        };
        for i in 0..n {
            m.set(i, i, Complex::ONE);
        }
        m
    }

    /// The discrete-Fourier-transform unitary `F[j][k] = e^{2πijk/n}/√n` —
    /// a canonical dense unitary for tests and demos.
    #[must_use]
    pub fn dft(n: usize) -> Self {
        #[allow(clippy::cast_precision_loss)]
        let scale = 1.0 / (n as f64).sqrt();
        let mut m = Self::identity(n);
        for j in 0..n {
            for k in 0..n {
                #[allow(clippy::cast_precision_loss)]
                let angle = 2.0 * std::f64::consts::PI * (j * k) as f64 / n as f64;
                m.set(j, k, Complex::from_polar(scale, angle));
            }
        }
        m
    }

    /// Dimension.
    #[must_use]
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Entry `(row, col)`.
    #[must_use]
    pub fn get(&self, row: usize, col: usize) -> Complex {
        // lint:allow(P104) dense n x n storage; row/col < n is the documented contract
        self.data[row * self.n + col]
    }

    /// Sets entry `(row, col)`.
    pub fn set(&mut self, row: usize, col: usize, v: Complex) {
        // lint:allow(P104) dense n x n storage; row/col < n is the documented contract
        self.data[row * self.n + col] = v;
    }

    /// Matrix-vector product.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != n`.
    #[must_use]
    pub fn apply(&self, x: &[Complex]) -> Vec<Complex> {
        assert_eq!(x.len(), self.n, "dimension mismatch");
        (0..self.n)
            .map(|r| (0..self.n).fold(Complex::ZERO, |acc, c| acc + self.get(r, c) * x[c]))
            .collect()
    }

    /// Conjugate transpose.
    #[must_use]
    pub fn adjoint(&self) -> Self {
        let mut m = Self::identity(self.n);
        for r in 0..self.n {
            for c in 0..self.n {
                m.set(c, r, self.get(r, c).conj());
            }
        }
        m
    }

    /// Matrix product `self · rhs`.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    #[must_use]
    pub fn multiply(&self, rhs: &Self) -> Self {
        assert_eq!(self.n, rhs.n, "dimension mismatch");
        let mut m = Self::identity(self.n);
        for r in 0..self.n {
            for c in 0..self.n {
                let v =
                    (0..self.n).fold(Complex::ZERO, |acc, k| acc + self.get(r, k) * rhs.get(k, c));
                m.set(r, c, v);
            }
        }
        m
    }

    /// Checks `‖U·U† − I‖∞ < tol`.
    #[must_use]
    pub fn is_unitary(&self, tol: f64) -> bool {
        let p = self.multiply(&self.adjoint());
        (0..self.n).all(|r| {
            (0..self.n).all(|c| {
                let want = if r == c { Complex::ONE } else { Complex::ZERO };
                (p.get(r, c) - want).norm() < tol
            })
        })
    }

    /// Maximum entry-wise distance to another matrix.
    #[must_use]
    pub fn distance(&self, other: &Self) -> f64 {
        self.data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (*a - *b).norm())
            .fold(0.0, f64::max)
    }
}

/// One nearest-neighbour 2×2 rotation of the mesh: an MZI with external
/// phase shifters acting on modes `(mode, mode + 1)` with the unitary
/// `[[α, β], [−β*, α*]]`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MeshRotation {
    /// Upper mode index.
    pub mode: usize,
    /// `α` coefficient.
    pub alpha: Complex,
    /// `β` coefficient.
    pub beta: Complex,
}

impl MeshRotation {
    /// The internal MZI splitting angle `θ = atan2(|β|, |α|)`.
    #[must_use]
    pub fn theta(&self) -> f64 {
        self.beta.norm().atan2(self.alpha.norm())
    }

    /// Applies the rotation to a mode vector in place.
    pub fn apply(&self, x: &mut [Complex]) {
        let (a, b) = (x[self.mode], x[self.mode + 1]);
        x[self.mode] = self.alpha * a + self.beta * b;
        x[self.mode + 1] = -self.beta.conj() * a + self.alpha.conj() * b;
    }

    /// The inverse (adjoint) rotation.
    #[must_use]
    pub fn adjoint(&self) -> Self {
        Self {
            mode: self.mode,
            alpha: self.alpha.conj(),
            beta: -self.beta,
        }
    }
}

/// A synthesized triangular MZI mesh implementing a target unitary as
/// `U = R₁†·R₂†⋯R_K†·D`: input phases `D` first, then the adjoint
/// rotations in reverse elimination order.
#[derive(Debug, Clone, PartialEq)]
pub struct MziMesh {
    n: usize,
    input_phases: Vec<Complex>,
    rotations: Vec<MeshRotation>,
}

impl MziMesh {
    /// Synthesizes a mesh for `target` by Givens elimination with
    /// nearest-neighbour rotations (Reck-style triangle).
    ///
    /// # Panics
    ///
    /// Panics if `target` is not unitary to 1e-9.
    #[must_use]
    pub fn synthesize(target: &Unitary) -> Self {
        assert!(target.is_unitary(1e-9), "mesh target must be unitary");
        let n = target.dim();
        let mut u = target.clone();
        let mut eliminations: Vec<MeshRotation> = Vec::new();

        // Zero the strict lower triangle column by column, bottom-up,
        // using rotations of adjacent rows (r−1, r).
        for c in 0..n {
            for r in (c + 1..n).rev() {
                let ua = u.get(r - 1, c);
                let ub = u.get(r, c);
                let t = (ua.norm_sqr() + ub.norm_sqr()).sqrt();
                if ub.norm() < 1e-14 {
                    continue;
                }
                let rot = MeshRotation {
                    mode: r - 1,
                    alpha: ua.conj().scale(1.0 / t),
                    beta: ub.conj().scale(1.0 / t),
                };
                // Left-multiply u by the rotation.
                for col in 0..n {
                    let a = u.get(r - 1, col);
                    let b = u.get(r, col);
                    u.set(r - 1, col, rot.alpha * a + rot.beta * b);
                    u.set(r, col, -rot.beta.conj() * a + rot.alpha.conj() * b);
                }
                eliminations.push(rot);
            }
        }

        // What remains is diagonal with unit-modulus entries.
        let input_phases = (0..n).map(|i| u.get(i, i)).collect();
        // U = (adjoint rotations in reverse order) · D.
        let rotations = eliminations
            .into_iter()
            .rev()
            .map(|r| r.adjoint())
            .collect();
        Self {
            n,
            input_phases,
            rotations,
        }
    }

    /// Mesh dimension (mode count).
    #[must_use]
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Number of physical MZIs in the mesh.
    #[must_use]
    pub fn mzi_count(&self) -> usize {
        self.rotations.len()
    }

    /// Propagates a mode vector through the mesh.
    ///
    /// # Panics
    ///
    /// Panics if `input.len()` differs from the mesh dimension.
    #[must_use]
    pub fn propagate(&self, input: &[Complex]) -> Vec<Complex> {
        assert_eq!(input.len(), self.n, "dimension mismatch");
        let mut x: Vec<Complex> = input
            .iter()
            .zip(&self.input_phases)
            .map(|(v, p)| *v * *p)
            .collect();
        for rot in &self.rotations {
            rot.apply(&mut x);
        }
        x
    }

    /// Reconstructs the implemented unitary by propagating basis vectors.
    #[must_use]
    pub fn to_unitary(&self) -> Unitary {
        let mut m = Unitary::identity(self.n);
        for c in 0..self.n {
            let mut basis = vec![Complex::ZERO; self.n];
            basis[c] = Complex::ONE;
            for (r, v) in self.propagate(&basis).into_iter().enumerate() {
                m.set(r, c, v);
            }
        }
        m
    }
}

/// Miller's self-aligning universal beam coupler: `n − 1` MZIs in a line,
/// configured so an arbitrary target mode vector exits entirely from the
/// final port — the additive primitive of the OO accumulator.
#[derive(Debug, Clone, PartialEq)]
pub struct BeamCoupler {
    rotations: Vec<MeshRotation>,
    n: usize,
}

impl BeamCoupler {
    /// Self-configures the coupler for `target` (Miller's sequential
    /// protocol: each MZI is set to forward all accumulated power).
    ///
    /// # Panics
    ///
    /// Panics if `target` has fewer than 2 modes or zero norm.
    #[must_use]
    pub fn configure_for(target: &[Complex]) -> Self {
        assert!(target.len() >= 2, "need at least two modes to couple");
        let norm: f64 = target.iter().map(|c| c.norm_sqr()).sum();
        assert!(norm > 0.0, "cannot align to a dark input");
        let mut rotations = Vec::with_capacity(target.len() - 1);
        // Accumulated amplitude flows down the chain; MZI k merges it
        // with mode k+1.
        let mut acc = target[0];
        for (k, &next) in target.iter().enumerate().skip(1) {
            let t = (acc.norm_sqr() + next.norm_sqr()).sqrt();
            let rot = if t < 1e-14 {
                MeshRotation {
                    mode: k - 1,
                    alpha: Complex::ONE,
                    beta: Complex::ZERO,
                }
            } else {
                MeshRotation {
                    mode: k - 1,
                    alpha: acc.conj().scale(1.0 / t),
                    beta: next.conj().scale(1.0 / t),
                }
            };
            rotations.push(rot);
            acc = Complex::new(t, 0.0);
        }
        Self {
            rotations,
            n: target.len(),
        }
    }

    /// Number of MZIs in the chain.
    #[must_use]
    pub fn mzi_count(&self) -> usize {
        self.rotations.len()
    }

    /// Couples an input vector through the configured chain. Returns the
    /// full output mode vector; the combined beam exits on the **first**
    /// mode of the last rotation's pair after cascading, which for this
    /// topology is mode `n − 2`'s partner — we report it as
    /// `(combined, residuals)`.
    ///
    /// # Panics
    ///
    /// Panics if the input length mismatches.
    #[must_use]
    pub fn couple(&self, input: &[Complex]) -> (Complex, Vec<Complex>) {
        assert_eq!(input.len(), self.n, "dimension mismatch");
        let mut x = input.to_vec();
        for rot in &self.rotations {
            // The accumulated beam rides on rot.mode; the merged output
            // continues on rot.mode + 1's slot… keep the chain convention:
            // output lands on x[rot.mode], then we swap it forward.
            rot.apply(&mut x);
            x.swap(rot.mode, rot.mode + 1);
        }
        let combined = x[self.n - 1];
        let residuals = x[..self.n - 1].to_vec();
        (combined, residuals)
    }

    /// Coupling efficiency for `input`: fraction of input power exiting
    /// the combined port.
    #[must_use]
    pub fn efficiency(&self, input: &[Complex]) -> f64 {
        let power_in: f64 = input.iter().map(|c| c.norm_sqr()).sum();
        // lint:allow(D003) exact dark-input sentinel, not a computed comparison
        if power_in == 0.0 {
            return 0.0;
        }
        let (combined, _) = self.couple(input);
        combined.norm_sqr() / power_in
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pixel_units::rng::SplitMix64;

    fn random_vector(n: usize, seed: u64) -> Vec<Complex> {
        let mut rng = SplitMix64::seed_from_u64(seed);
        (0..n)
            .map(|_| Complex::new(rng.range_f64(-1.0, 1.0), rng.range_f64(-1.0, 1.0)))
            .collect()
    }

    /// Random unitary via Gram-Schmidt on a random complex matrix.
    fn random_unitary(n: usize, seed: u64) -> Unitary {
        let mut rng = SplitMix64::seed_from_u64(seed);
        let mut rows: Vec<Vec<Complex>> = (0..n)
            .map(|_| {
                (0..n)
                    .map(|_| Complex::new(rng.range_f64(-1.0, 1.0), rng.range_f64(-1.0, 1.0)))
                    .collect()
            })
            .collect();
        for i in 0..n {
            for j in 0..i {
                let proj = rows[i]
                    .iter()
                    .zip(&rows[j])
                    .fold(Complex::ZERO, |acc, (a, b)| acc + *a * b.conj());
                let adjustments: Vec<Complex> = rows[j].iter().map(|&v| proj * v).collect();
                for (value, adj) in rows[i].iter_mut().zip(adjustments) {
                    *value = *value - adj;
                }
            }
            let norm: f64 = rows[i].iter().map(|c| c.norm_sqr()).sum::<f64>().sqrt();
            for v in &mut rows[i] {
                *v = v.scale(1.0 / norm);
            }
        }
        Unitary::from_rows(n, rows.into_iter().flatten().collect())
    }

    #[test]
    fn dft_is_unitary() {
        for n in [2, 3, 4, 8] {
            assert!(Unitary::dft(n).is_unitary(1e-9), "DFT({n})");
        }
    }

    #[test]
    fn mesh_reconstructs_dft() {
        for n in [2, 4, 8] {
            let target = Unitary::dft(n);
            let mesh = MziMesh::synthesize(&target);
            let got = mesh.to_unitary();
            assert!(got.distance(&target) < 1e-9, "DFT({n})");
        }
    }

    #[test]
    fn mesh_reconstructs_random_unitaries() {
        for seed in 0..5 {
            let target = random_unitary(6, seed);
            assert!(target.is_unitary(1e-8));
            let mesh = MziMesh::synthesize(&target);
            assert!(mesh.to_unitary().distance(&target) < 1e-8, "seed {seed}");
        }
    }

    #[test]
    fn mesh_size_is_reck_triangle() {
        // A full Reck triangle needs n(n−1)/2 MZIs.
        let mesh = MziMesh::synthesize(&random_unitary(6, 42));
        assert_eq!(mesh.mzi_count(), 6 * 5 / 2);
    }

    #[test]
    fn mesh_propagation_matches_matrix_action() {
        let target = random_unitary(5, 7);
        let mesh = MziMesh::synthesize(&target);
        let x = random_vector(5, 8);
        let via_mesh = mesh.propagate(&x);
        let via_matrix = target.apply(&x);
        for (a, b) in via_mesh.iter().zip(&via_matrix) {
            assert!((*a - *b).norm() < 1e-8);
        }
    }

    #[test]
    fn mesh_preserves_power() {
        let mesh = MziMesh::synthesize(&random_unitary(4, 3));
        let x = random_vector(4, 4);
        let y = mesh.propagate(&x);
        let pin: f64 = x.iter().map(|c| c.norm_sqr()).sum();
        let pout: f64 = y.iter().map(|c| c.norm_sqr()).sum();
        assert!((pin - pout).abs() < 1e-9);
    }

    #[test]
    fn beam_coupler_captures_all_power_of_its_target() {
        for seed in 0..5 {
            let target = random_vector(6, seed);
            let coupler = BeamCoupler::configure_for(&target);
            assert_eq!(coupler.mzi_count(), 5);
            let eff = coupler.efficiency(&target);
            assert!((eff - 1.0).abs() < 1e-9, "seed {seed}: efficiency {eff}");
            let (_, residuals) = coupler.couple(&target);
            assert!(residuals.iter().all(|r| r.norm() < 1e-7));
        }
    }

    #[test]
    fn beam_coupler_equal_inputs_model_additive_combining() {
        // The OO accumulate case: equal-phase pulses on every port.
        let ones = vec![Complex::ONE; 4];
        let coupler = BeamCoupler::configure_for(&ones);
        let (combined, _) = coupler.couple(&ones);
        // 4 unit-power pulses combine into one 4-unit-power beam.
        assert!((combined.norm_sqr() - 4.0).abs() < 1e-9);
    }

    #[test]
    fn beam_coupler_rejects_orthogonal_inputs() {
        let target = vec![Complex::ONE, Complex::ONE];
        let coupler = BeamCoupler::configure_for(&target);
        // (1, −1) is orthogonal to (1, 1): nothing exits the combined port.
        let orth = vec![Complex::ONE, -Complex::ONE];
        assert!(coupler.efficiency(&orth) < 1e-12);
    }

    #[test]
    fn beam_coupler_handles_sparse_targets() {
        let target = vec![Complex::ZERO, Complex::ONE, Complex::ZERO, Complex::ONE];
        let coupler = BeamCoupler::configure_for(&target);
        assert!((coupler.efficiency(&target) - 1.0).abs() < 1e-9);
    }
}
