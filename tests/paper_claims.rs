//! The paper's headline numerical claims, checked end to end.
//!
//! Absolute joules come from the calibration in
//! `pixel_core::calibration`; what these tests pin down is that the
//! *relative* claims — who wins, by roughly what factor, where the
//! crossovers fall — come out of the model structurally.

use pixel::core::accelerator::Accelerator;
use pixel::core::config::{AcceleratorConfig, Design};
use pixel::core::dse;
use pixel::core::energy::OperationEnergies;
use pixel::dnn::zoo;

fn accel(design: Design, lanes: usize, bits: u32) -> Accelerator {
    Accelerator::new(AcceleratorConfig::new(design, lanes, bits))
}

/// §VII: "optical bitwise multiplication utilizing MRRs gave a 94.9%
/// increase in energy improvement for both OE and OO designs".
#[test]
fn claim_94_9_percent_multiplication_improvement() {
    let ee = OperationEnergies::for_config(&AcceleratorConfig::new(Design::Ee, 4, 16));
    let oe = OperationEnergies::for_config(&AcceleratorConfig::new(Design::Oe, 4, 16));
    let oo = OperationEnergies::for_config(&AcceleratorConfig::new(Design::Oo, 4, 16));
    assert_eq!(
        oe.mul, oo.mul,
        "both optical designs share the MRR multiply"
    );
    let improvement = 1.0 - oe.mul / ee.mul;
    assert!(
        (improvement - 0.949).abs() < 0.01,
        "multiply improvement {improvement}"
    );
}

/// §VII: "the OO design had a further 53.8% improvement for accumulation
/// using MZIs over the electrical addition in the hybrid OE design".
#[test]
fn claim_53_8_percent_accumulation_improvement() {
    let oe = OperationEnergies::for_config(&AcceleratorConfig::new(Design::Oe, 4, 16));
    let oo = OperationEnergies::for_config(&AcceleratorConfig::new(Design::Oo, 4, 16));
    let improvement = 1.0 - oo.add / oe.add;
    assert!(
        (improvement - 0.538).abs() < 0.02,
        "accumulation improvement {improvement}"
    );
}

/// Abstract / §V-B3: EDP improvements of 48.4% (OE) and 73.9% (OO) over
/// EE at 4 lanes, 16 bits/lane (geomean across the six CNNs).
#[test]
fn claim_headline_edp_improvements() {
    let (oe, oo) = dse::headline_edp_improvements();
    assert!((oe - 0.484).abs() < 0.08, "OE geomean improvement {oe}");
    assert!((oo - 0.739).abs() < 0.06, "OO geomean improvement {oo}");
    assert!(oo > oe, "OO dominates OE");
}

/// §V-B2: "In the Conv 2 layer, OO is 31.9% faster than EE, and 18.6%
/// faster than OE" (ZFNet, 8 lanes, 8 bits/lane).
#[test]
fn claim_zfnet_conv2_latency_gaps() {
    let conv2 = |design| {
        accel(design, 8, 8)
            .evaluate(&zoo::zfnet())
            .layers
            .into_iter()
            .find(|l| l.name == "Conv2")
            .expect("ZFNet has Conv2")
            .latency
            .value()
    };
    let (ee, oe, oo) = (conv2(Design::Ee), conv2(Design::Oe), conv2(Design::Oo));
    let vs_ee = 1.0 - oo / ee;
    let vs_oe = 1.0 - oo / oe;
    assert!((vs_ee - 0.319).abs() < 0.07, "OO vs EE {vs_ee}");
    assert!((vs_oe - 0.186).abs() < 0.07, "OO vs OE {vs_oe}");
}

/// Table II, reproduced within 15% on every cell of all nine rows.
#[test]
fn claim_table_ii_cells() {
    // (network, design, [mul, add, act, oe, comm, laser]) in mJ.
    let paper: &[(&str, Design, [f64; 6])] = &[
        (
            "ResNet-34",
            Design::Ee,
            [3634.0, 847.0, 1.09, 0.0, 139.0, 0.0],
        ),
        (
            "ResNet-34",
            Design::Oe,
            [187.0, 910.0, 1.09, 227.0, 118.0, 59.8],
        ),
        (
            "ResNet-34",
            Design::Oo,
            [187.0, 420.0, 1.09, 227.0, 118.0, 91.0],
        ),
        (
            "GoogLeNet",
            Design::Ee,
            [1578.0, 368.0, 1.22, 0.0, 60.4, 0.0],
        ),
        (
            "GoogLeNet",
            Design::Oe,
            [81.0, 396.0, 1.22, 98.8, 51.4, 26.0],
        ),
        (
            "GoogLeNet",
            Design::Oo,
            [81.0, 183.0, 1.22, 98.8, 51.4, 35.1],
        ),
        ("ZFNet", Design::Ee, [1225.0, 313.0, 34.2, 0.0, 46.9, 0.0]),
        ("ZFNet", Design::Oe, [62.9, 336.0, 34.2, 76.6, 39.9, 20.1]),
        ("ZFNet", Design::Oo, [62.9, 155.0, 34.2, 76.6, 39.9, 30.4]),
    ];
    let rows = dse::table2_breakdown();
    for (net, design, expected) in paper {
        let row = rows
            .iter()
            .find(|r| r.network == *net && r.design == *design)
            .expect("row present");
        let actual: Vec<f64> = row
            .breakdown
            .components()
            .iter()
            .map(|e| e.as_millijoules())
            .collect();
        for (i, (&a, &p)) in actual.iter().zip(expected).enumerate() {
            if p == 0.0 {
                assert!(
                    a.abs() < 1e-9,
                    "{net} {design} component {i}: {a} should be 0"
                );
            } else {
                let err = (a - p).abs() / p;
                assert!(
                    err < 0.15,
                    "{net} {design} component {i}: {a:.1} vs paper {p} ({:.0}% off)",
                    err * 100.0
                );
            }
        }
    }
}

/// §V-B1 / Fig. 7: optical designs outperform EE on energy once
/// bits/lane exceeds the lane count; at 32 bits on 8 lanes EE dominates
/// the relative energy.
#[test]
fn claim_fig7_energy_crossover() {
    let nets = zoo::all_networks();
    let total = |design, bits| {
        let a = accel(design, 8, bits);
        nets.iter()
            .map(|n| a.evaluate(n).total_energy().value())
            .sum::<f64>()
    };
    // At 4 bits/lane on 8 lanes, EE is still competitive (no big optical win).
    let ratio_4 = total(Design::Oo, 4) / total(Design::Ee, 4);
    assert!(ratio_4 > 0.8, "OO/EE at 4 bits = {ratio_4}");
    // At 32 bits/lane, OO wins by a large margin.
    let ratio_32 = total(Design::Oo, 32) / total(Design::Ee, 32);
    assert!(ratio_32 < 0.25, "OO/EE at 32 bits = {ratio_32}");
}

/// §V-A / Fig. 6: EE occupies the least area; OO the most, at every lane
/// count.
#[test]
fn claim_fig6_area_ordering() {
    for lanes in [2usize, 4, 8, 16] {
        let area = |design| {
            pixel::core::area::fabric_area(&AcceleratorConfig::new(design, lanes, 4)).total()
        };
        assert!(area(Design::Ee) < area(Design::Oe), "{lanes} lanes");
        assert!(area(Design::Oe) < area(Design::Oo), "{lanes} lanes");
    }
}

/// §V-B2 / Fig. 8: EE latency declines monotonically with bits/lane;
/// OE and OO are U-shaped with the minimum at the optical clumping
/// threshold (10 pulses per electrical cycle).
#[test]
fn claim_fig8_latency_shapes() {
    let nets = zoo::all_networks();
    let points = dse::fig8_latency_geomean(&nets, &[1, 2, 4, 8, 10, 16, 24, 32]);
    let series = |design: Design| -> Vec<f64> {
        points
            .iter()
            .filter(|p| p.design == design)
            .map(|p| p.latency_geomean)
            .collect()
    };
    let ee = series(Design::Ee);
    assert!(
        ee.windows(2).all(|w| w[1] < w[0]),
        "EE declines monotonically: {ee:?}"
    );
    for design in [Design::Oe, Design::Oo] {
        let s = series(design);
        let min = s
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        assert_eq!(min, 4, "{design} minimum sits at 10 bits/lane: {s:?}");
        assert!(s[7] > s[4], "{design} rises past the threshold");
    }
}
