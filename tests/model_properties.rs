//! Property-based invariants of the architecture models, checked across
//! random configurations rather than at hand-picked points.

use pixel::core::config::{AcceleratorConfig, Design};
use pixel::core::energy::OperationEnergies;
use pixel::core::latency::cycles_per_firing;
use pixel::core::mapping::LayerMapping;
use pixel::dnn::analysis::{analyze_layer, FcCountConvention};
use pixel::dnn::layer::{Layer, Shape};
use proptest::prelude::*;

fn arb_config() -> impl Strategy<Value = (Design, usize, u32)> {
    (
        prop_oneof![Just(Design::Ee), Just(Design::Oe), Just(Design::Oo)],
        1usize..=16,
        1u32..=32,
    )
}

proptest! {
    /// All per-operation energies are positive and finite everywhere in
    /// the configuration space.
    #[test]
    fn energies_are_finite_and_positive((design, lanes, bits) in arb_config()) {
        let ops = OperationEnergies::for_config(&AcceleratorConfig::new(design, lanes, bits));
        for e in [ops.mul, ops.add, ops.act, ops.comm] {
            prop_assert!(e.value() > 0.0 && e.is_finite());
        }
        if design.is_optical() {
            prop_assert!(ops.oe.value() > 0.0);
            prop_assert!(ops.laser.value() > 0.0);
        } else {
            prop_assert!(ops.oe.value() == 0.0 && ops.laser.value() == 0.0);
        }
    }

    /// EE multiply energy is strictly increasing in precision; the
    /// optical multiply stays a fixed small fraction of it.
    #[test]
    fn multiply_energy_monotone_in_bits(lanes in 1usize..=16, bits in 1u32..=31) {
        let at = |b: u32, d: Design| {
            OperationEnergies::for_config(&AcceleratorConfig::new(d, lanes, b)).mul
        };
        prop_assert!(at(bits + 1, Design::Ee) > at(bits, Design::Ee));
        let ratio = at(bits, Design::Oe) / at(bits, Design::Ee);
        prop_assert!((ratio - 0.0516).abs() < 0.001, "ratio {ratio}");
    }

    /// Firing service time never decreases with precision and both
    /// optical designs obey OE ≥ OO (the extra o/e handoff).
    #[test]
    fn cycles_monotone_and_ordered(lanes in 1usize..=16, bits in 1u32..=31) {
        for d in Design::ALL {
            let now = cycles_per_firing(&AcceleratorConfig::new(d, lanes, bits));
            let next = cycles_per_firing(&AcceleratorConfig::new(d, lanes, bits + 1));
            prop_assert!(next >= now, "{d} at {bits}");
        }
        let oe = cycles_per_firing(&AcceleratorConfig::new(Design::Oe, lanes, bits));
        let oo = cycles_per_firing(&AcceleratorConfig::new(Design::Oo, lanes, bits));
        prop_assert!(oe >= oo);
    }

    /// Mapping identities: chunks cover all MACs exactly once, rounds
    /// cover all chunks, utilization ∈ (0, 100].
    #[test]
    fn mapping_covers_work(
        h in 4usize..=32,
        c in 1usize..=16,
        m in 1usize..=16,
        r in 1usize..=3,
        lanes in 1usize..=16,
        tiles in 1usize..=32,
    ) {
        prop_assume!(h >= r);
        let layer = Layer::conv("c", Shape::square(h, c), m, 2 * r - 1, 1);
        let config = AcceleratorConfig::new(Design::Oe, lanes, 8).with_tiles(tiles);
        let map = LayerMapping::for_layer(&config, &layer);

        let counts = analyze_layer(&layer, FcCountConvention::Paper);
        prop_assert_eq!(map.total_macs(), counts.mul, "macs = N_mul");
        prop_assert!(map.chunks_per_window * map.lanes >= map.macs_per_window);
        prop_assert!((map.chunks_per_window - 1) * map.lanes < map.macs_per_window);
        prop_assert!(map.rounds * config.tiles as u64 >= map.windows * map.chunks_per_window);
        let u = map.average_utilization_pct();
        prop_assert!(u > 0.0 && u <= 100.0);
    }

    /// The §IV-B identities hold for every conv layer: N_add = N_mul +
    /// N_act and N_mul = R²·N_MVM.
    #[test]
    fn analysis_identities(
        h in 3usize..=64,
        c in 1usize..=32,
        m in 1usize..=64,
        r_idx in 0usize..3,
        u in 1usize..=2,
    ) {
        let r = [1usize, 3, 5][r_idx];
        prop_assume!(h >= r);
        let layer = Layer::conv("c", Shape::square(h, c), m, r, u);
        let counts = analyze_layer(&layer, FcCountConvention::Paper);
        prop_assert_eq!(counts.add, counts.mul + counts.act);
        prop_assert_eq!(counts.mul, (r * r) as u64 * counts.mvm);
        let e = layer.output_feature_size() as u64;
        prop_assert_eq!(counts.act, e * e * m as u64);
    }

    /// Design ordering at the calibration point extends across the whole
    /// precision sweep: total per-op energy of OO ≤ OE for bits ≥ 8, and
    /// both beat EE for bits ≥ 8 at any lane count.
    #[test]
    fn optical_energy_dominance_at_high_bits(lanes in 1usize..=16, bits in 8u32..=32) {
        let total = |d: Design| {
            let ops = OperationEnergies::for_config(&AcceleratorConfig::new(d, lanes, bits));
            (ops.mul + ops.add + ops.oe + ops.comm + ops.laser).value()
        };
        prop_assert!(total(Design::Oe) < total(Design::Ee), "OE < EE at {lanes}/{bits}");
        if bits >= 16 {
            prop_assert!(total(Design::Oo) < total(Design::Oe), "OO < OE at {lanes}/{bits}");
        }
    }
}
