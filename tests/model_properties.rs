//! Property-based invariants of the architecture models, checked across
//! random configurations rather than at hand-picked points.

use pixel::core::config::{AcceleratorConfig, Design};
use pixel::core::energy::OperationEnergies;
use pixel::core::latency::cycles_per_firing;
use pixel::core::mapping::LayerMapping;
use pixel::dnn::analysis::{analyze_layer, FcCountConvention};
use pixel::dnn::layer::{Layer, Shape};
use pixel::units::rng::SplitMix64;

fn random_config(rng: &mut SplitMix64) -> (Design, usize, u32) {
    let design = Design::ALL[rng.range_usize(0, Design::ALL.len() - 1)];
    (design, rng.range_usize(1, 16), rng.range_u32(1, 32))
}

/// All per-operation energies are positive and finite everywhere in
/// the configuration space.
#[test]
fn energies_are_finite_and_positive() {
    let mut rng = SplitMix64::seed_from_u64(0x01);
    for _ in 0..256 {
        let (design, lanes, bits) = random_config(&mut rng);
        let ops = OperationEnergies::for_config(&AcceleratorConfig::new(design, lanes, bits));
        for e in [ops.mul, ops.add, ops.act, ops.comm] {
            assert!(e.value() > 0.0 && e.is_finite(), "{design} {lanes}/{bits}");
        }
        if design.is_optical() {
            assert!(ops.oe.value() > 0.0);
            assert!(ops.laser.value() > 0.0);
        } else {
            assert!(ops.oe.value() == 0.0 && ops.laser.value() == 0.0);
        }
    }
}

/// EE multiply energy is strictly increasing in precision; the
/// optical multiply stays a fixed small fraction of it.
#[test]
fn multiply_energy_monotone_in_bits() {
    let mut rng = SplitMix64::seed_from_u64(0x02);
    for _ in 0..256 {
        let lanes = rng.range_usize(1, 16);
        let bits = rng.range_u32(1, 31);
        let at = |b: u32, d: Design| {
            OperationEnergies::for_config(&AcceleratorConfig::new(d, lanes, b)).mul
        };
        assert!(at(bits + 1, Design::Ee) > at(bits, Design::Ee));
        let ratio = at(bits, Design::Oe) / at(bits, Design::Ee);
        assert!((ratio - 0.0516).abs() < 0.001, "ratio {ratio}");
    }
}

/// Firing service time never decreases with precision and both
/// optical designs obey OE ≥ OO (the extra o/e handoff).
#[test]
fn cycles_monotone_and_ordered() {
    let mut rng = SplitMix64::seed_from_u64(0x03);
    for _ in 0..256 {
        let lanes = rng.range_usize(1, 16);
        let bits = rng.range_u32(1, 31);
        for d in Design::ALL {
            let now = cycles_per_firing(&AcceleratorConfig::new(d, lanes, bits));
            let next = cycles_per_firing(&AcceleratorConfig::new(d, lanes, bits + 1));
            assert!(next >= now, "{d} at {bits}");
        }
        let oe = cycles_per_firing(&AcceleratorConfig::new(Design::Oe, lanes, bits));
        let oo = cycles_per_firing(&AcceleratorConfig::new(Design::Oo, lanes, bits));
        assert!(oe >= oo);
    }
}

/// Mapping identities: chunks cover all MACs exactly once, rounds
/// cover all chunks, utilization ∈ (0, 100].
#[test]
fn mapping_covers_work() {
    let mut rng = SplitMix64::seed_from_u64(0x04);
    for _ in 0..256 {
        let r = rng.range_usize(1, 3);
        let h = rng.range_usize(r.max(4), 32);
        let c = rng.range_usize(1, 16);
        let m = rng.range_usize(1, 16);
        let lanes = rng.range_usize(1, 16);
        let tiles = rng.range_usize(1, 32);
        let layer = Layer::conv("c", Shape::square(h, c), m, 2 * r - 1, 1);
        let config = AcceleratorConfig::new(Design::Oe, lanes, 8).with_tiles(tiles);
        let map = LayerMapping::for_layer(&config, &layer);

        let counts = analyze_layer(&layer, FcCountConvention::Paper);
        assert_eq!(map.total_macs(), counts.mul, "macs = N_mul");
        assert!(map.chunks_per_window * map.lanes >= map.macs_per_window);
        assert!((map.chunks_per_window - 1) * map.lanes < map.macs_per_window);
        assert!(map.rounds * config.tiles as u64 >= map.windows * map.chunks_per_window);
        let u = map.average_utilization_pct();
        assert!(u > 0.0 && u <= 100.0);
    }
}

/// The §IV-B identities hold for every conv layer: N_add = N_mul +
/// N_act and N_mul = R²·N_MVM.
#[test]
fn analysis_identities() {
    let mut rng = SplitMix64::seed_from_u64(0x05);
    for _ in 0..256 {
        let r = [1usize, 3, 5][rng.range_usize(0, 2)];
        let h = rng.range_usize(r.max(3), 64);
        let c = rng.range_usize(1, 32);
        let m = rng.range_usize(1, 64);
        let u = rng.range_usize(1, 2);
        let layer = Layer::conv("c", Shape::square(h, c), m, r, u);
        let counts = analyze_layer(&layer, FcCountConvention::Paper);
        assert_eq!(counts.add, counts.mul + counts.act);
        assert_eq!(counts.mul, (r * r) as u64 * counts.mvm);
        let e = layer.output_feature_size() as u64;
        assert_eq!(counts.act, e * e * m as u64);
    }
}

/// Design ordering at the calibration point extends across the whole
/// precision sweep: total per-op energy of OO ≤ OE for bits ≥ 8, and
/// both beat EE for bits ≥ 8 at any lane count.
#[test]
fn optical_energy_dominance_at_high_bits() {
    let mut rng = SplitMix64::seed_from_u64(0x06);
    for _ in 0..256 {
        let lanes = rng.range_usize(1, 16);
        let bits = rng.range_u32(8, 32);
        let total = |d: Design| {
            let ops = OperationEnergies::for_config(&AcceleratorConfig::new(d, lanes, bits));
            (ops.mul + ops.add + ops.oe + ops.comm + ops.laser).value()
        };
        assert!(
            total(Design::Oe) < total(Design::Ee),
            "OE < EE at {lanes}/{bits}"
        );
        if bits >= 16 {
            assert!(
                total(Design::Oo) < total(Design::Oe),
                "OO < OE at {lanes}/{bits}"
            );
        }
    }
}
