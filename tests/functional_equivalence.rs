//! Cross-crate functional verification: quantized CNN inference must be
//! bit-identical whether the MACs run as plain integers, as the EE
//! Stripes datapath, or through the OE/OO optical device simulations.

use pixel::core::config::{AcceleratorConfig, Design};
use pixel::core::omac::engine_for;
use pixel::dnn::inference::{forward, DirectMac, LayerWeights, MacEngine};
use pixel::dnn::layer::{Layer, PoolKind, Shape};
use pixel::dnn::network::Network;
use pixel::dnn::quant::Precision;
use pixel::dnn::tensor::Tensor;
use pixel::dnn::zoo;
use pixel::units::rng::SplitMix64;

/// A LeNet-shaped micro CNN small enough to push through the pulse-train
/// simulation in a debug-mode test.
fn micro_net() -> Network {
    Network::new(
        "micro",
        vec![
            Layer::conv("Conv1", Shape::square(12, 1), 4, 3, 1),
            Layer::pool("Pool1", Shape::square(10, 4), 2, 2, PoolKind::Max),
            Layer::conv("Conv2", Shape::square(5, 4), 6, 3, 1),
            Layer::fc("FC1", 3 * 3 * 6, 10),
        ],
    )
}

fn random_weights(net: &Network, precision: Precision, seed: u64) -> Vec<LayerWeights> {
    let mut rng = SplitMix64::seed_from_u64(seed);
    net.layers()
        .iter()
        .map(|l| LayerWeights::generate(l, || rng.range_u64(0, precision.max_value())))
        .collect()
}

fn random_input(shape: Shape, precision: Precision, seed: u64) -> Tensor {
    let mut rng = SplitMix64::seed_from_u64(seed);
    Tensor::from_fn(shape, |_, _, _| rng.range_u64(0, precision.max_value()))
}

#[test]
fn micro_cnn_is_bit_identical_across_all_engines() {
    let net = micro_net();
    net.validate_sequential().expect("micro net is consistent");
    let precision = Precision::new(4);

    for seed in [1u64, 2, 3] {
        let weights = random_weights(&net, precision, seed);
        let input = random_input(Shape::square(12, 1), precision, seed + 100);
        let reference =
            forward(&net, &input, &weights, &DirectMac, precision).expect("consistent shapes");

        for design in Design::ALL {
            let engine = engine_for(&AcceleratorConfig::new(design, 4, precision.bits()));
            let out = forward(&net, &input, &weights, engine.as_ref(), precision)
                .expect("consistent shapes");
            assert_eq!(out, reference, "{design} seed {seed}");
        }
    }
}

#[test]
fn real_lenet_windows_sampled_through_optical_engines() {
    // Sample inner-product windows at real LeNet layer sizes (25, 150,
    // 400, 120 elements) instead of a full forward pass, which keeps the
    // debug-mode pulse-train simulation fast.
    let net = zoo::lenet();
    let window_sizes: Vec<usize> = net
        .compute_layers()
        .map(|l| match l.kind {
            pixel::dnn::layer::LayerKind::Conv { kernel, .. } => kernel * kernel * l.input.c,
            pixel::dnn::layer::LayerKind::Fc { .. } => l.input.elements(),
            pixel::dnn::layer::LayerKind::Pool { .. } => unreachable!(),
        })
        .collect();
    assert!(window_sizes.contains(&400), "LeNet conv3 window");

    let mut rng = SplitMix64::seed_from_u64(99);
    for &len in &window_sizes {
        let n: Vec<u64> = (0..len).map(|_| rng.range_u64(0, 255)).collect();
        let s: Vec<u64> = (0..len).map(|_| rng.range_u64(0, 255)).collect();
        let expected = DirectMac.inner_product(&n, &s);
        for design in Design::ALL {
            let engine = engine_for(&AcceleratorConfig::new(design, 8, 8));
            assert_eq!(
                engine.inner_product(&n, &s),
                expected,
                "{design} window of {len}"
            );
        }
    }
}

#[test]
fn engines_handle_degenerate_inputs() {
    for design in Design::ALL {
        let engine = engine_for(&AcceleratorConfig::new(design, 4, 8));
        assert_eq!(engine.inner_product(&[], &[]), 0, "{design} empty window");
        assert_eq!(engine.inner_product(&[0], &[0]), 0, "{design} zeros");
        assert_eq!(
            engine.inner_product(&[255; 4], &[255; 4]),
            4 * 255 * 255,
            "{design} saturated operands"
        );
    }
}

#[test]
fn requantization_is_engine_independent() {
    // The precision-rescaling path (right shifts between layers) must not
    // interact with which engine computed the raw sums.
    let net = micro_net();
    let weights = random_weights(&net, Precision::new(6), 7);
    let input = random_input(Shape::square(12, 1), Precision::new(6), 8);
    for precision_bits in [2u32, 4, 6] {
        let precision = Precision::new(precision_bits);
        let reference = forward(&net, &input, &weights, &DirectMac, precision).expect("shapes");
        let engine = engine_for(&AcceleratorConfig::new(Design::Oo, 4, 6));
        let optical = forward(&net, &input, &weights, engine.as_ref(), precision).expect("shapes");
        assert_eq!(optical, reference, "precision {precision_bits}");
    }
}
