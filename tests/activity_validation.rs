//! Energy-model validation by counting: the bit-true engines tally every
//! device event they perform, and those tallies must equal the closed
//! forms the analytic energy model multiplies by. This closes the loop
//! between simulation activity and the charged energy.

use pixel::core::omac::{OeMac, OoMac};
use pixel::dnn::inference::MacEngine;
use pixel::units::rng::SplitMix64;

#[test]
fn oe_activity_matches_energy_model_forms() {
    // The model charges an optical multiply 2·K·b² because the word's b
    // bits stream for b synapse-bit cycles: counted MRR slots per
    // multiply must equal b².
    for (lanes, bits, muls) in [(4usize, 8u32, 12usize), (2, 4, 6), (8, 16, 8)] {
        let mac = OeMac::new(lanes, bits);
        let mut rng = SplitMix64::seed_from_u64(u64::from(bits));
        let limit = (1u64 << bits) - 1;
        let n: Vec<u64> = (0..muls).map(|_| rng.range_u64(0, limit)).collect();
        let s: Vec<u64> = (0..muls).map(|_| rng.range_u64(0, limit)).collect();
        let _ = mac.inner_product(&n, &s);

        // Padded to full lanes: the hardware gates every lane every cycle.
        let padded = muls.div_ceil(lanes) * lanes;
        let expected_slots = (padded as u64) * u64::from(bits) * u64::from(bits);
        assert_eq!(
            mac.activity().mrr_slots(),
            expected_slots,
            "lanes={lanes} bits={bits} muls={muls}"
        );
        // One o/e conversion per lane per synapse-bit cycle.
        assert_eq!(
            mac.activity().oe_conversions(),
            (padded as u64) * u64::from(bits)
        );
        // One accumulate per partial product.
        assert_eq!(mac.activity().cla_ops(), (padded as u64) * u64::from(bits));
    }
}

#[test]
fn oo_activity_matches_energy_model_forms() {
    for (lanes, bits, muls) in [(4usize, 8u32, 10usize), (1, 4, 5)] {
        let mac = OoMac::new(lanes, bits);
        let mut rng = SplitMix64::seed_from_u64(7);
        let limit = (1u64 << bits) - 1;
        let n: Vec<u64> = (0..muls).map(|_| rng.range_u64(0, limit)).collect();
        let s: Vec<u64> = (0..muls).map(|_| rng.range_u64(0, limit)).collect();
        let _ = mac.inner_product(&n, &s);

        let padded = (muls.div_ceil(lanes) * lanes) as u64;
        // b² MRR slots per multiply — same optical AND as OE.
        assert_eq!(
            mac.activity().mrr_slots(),
            padded * u64::from(bits) * u64::from(bits)
        );
        // Exactly one o/e conversion per multiply (the OO design's big
        // structural win over OE's b conversions): the model charges o/e
        // per word, and the count confirms it.
        assert_eq!(mac.activity().oe_conversions(), padded);
        // One electrical accumulate per product — the residual electrical
        // add the OO energy model's fixed term covers.
        assert_eq!(mac.activity().cla_ops(), padded);
        // The combined train spans 2b−1 slots (product width).
        assert_eq!(mac.activity().mzi_slots(), padded * u64::from(2 * bits - 1));
        assert_eq!(
            mac.activity().comparator_decisions(),
            padded * u64::from(2 * bits - 1)
        );
    }
}

#[test]
fn oo_does_b_times_fewer_conversions_than_oe() {
    // The structural reason Table II's OO add is half of OE's: the MZI
    // chain collapses b per-cycle conversions into one per word.
    let bits = 8u32;
    let n: Vec<u64> = vec![200; 8];
    let s: Vec<u64> = vec![131; 8];
    let oe = OeMac::new(4, bits);
    let oo = OoMac::new(4, bits);
    let _ = oe.inner_product(&n, &s);
    let _ = oo.inner_product(&n, &s);
    assert_eq!(
        oe.activity().oe_conversions(),
        u64::from(bits) * oo.activity().oe_conversions()
    );
    // Identical optical AND activity.
    assert_eq!(oe.activity().mrr_slots(), oo.activity().mrr_slots());
}
