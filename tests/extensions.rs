//! Integration tests across the extension modules: signed quantization on
//! optical engines, the coherent-mesh comparator, batched throughput, and
//! the schedule simulator against the analytic model.

use pixel::core::coherent::CoherentEngine;
use pixel::core::config::{AcceleratorConfig, Design};
use pixel::core::omac::engine_for;
use pixel::core::sim::{simulate_network, SimConfig};
use pixel::core::throughput::batched;
use pixel::dnn::quant::Precision;
use pixel::dnn::signed::{signed_inner_product, SignedQuant};
use pixel::dnn::zoo;
use pixel::units::rng::SplitMix64;

#[test]
fn signed_inner_products_through_optical_engines() {
    let mut rng = SplitMix64::seed_from_u64(5);
    let qa = SignedQuant::centered(Precision::new(8));
    let qb = SignedQuant::centered(Precision::new(8));
    for design in Design::ALL {
        let engine = engine_for(&AcceleratorConfig::new(design, 4, 8));
        for _ in 0..5 {
            let len = rng.range_usize(1, 29);
            let signed: Vec<(i64, i64)> = (0..len)
                .map(|_| (rng.range_i64(-128, 127), rng.range_i64(-128, 127)))
                .collect();
            let expected: i64 = signed.iter().map(|&(x, y)| x * y).sum();
            let a: Vec<u64> = signed.iter().map(|&(x, _)| qa.encode(x)).collect();
            let b: Vec<u64> = signed.iter().map(|&(_, y)| qb.encode(y)).collect();
            assert_eq!(
                signed_inner_product(engine.as_ref(), &a, &qa, &b, &qb),
                expected,
                "{design} len={len}"
            );
        }
    }
}

#[test]
fn signed_fc_layer_through_optical_engines() {
    use pixel::dnn::signed::signed_fully_connected;
    let q = SignedQuant::centered(Precision::new(8));
    let mut rng = SplitMix64::seed_from_u64(17);
    let inputs: Vec<i64> = (0..12).map(|_| rng.range_i64(-128, 127)).collect();
    let weights: Vec<i64> = (0..3 * 12).map(|_| rng.range_i64(-128, 127)).collect();
    let expected: Vec<i64> = weights
        .chunks(12)
        .map(|row| row.iter().zip(&inputs).map(|(a, b)| a * b).sum())
        .collect();
    let x_codes: Vec<u64> = inputs.iter().map(|&v| q.encode(v)).collect();
    let w_codes: Vec<u64> = weights.iter().map(|&v| q.encode(v)).collect();
    for design in Design::ALL {
        let engine = engine_for(&AcceleratorConfig::new(design, 4, 8));
        let out = signed_fully_connected(engine.as_ref(), &x_codes, &q, &w_codes, &q);
        assert_eq!(out, expected, "{design}");
    }
}

#[test]
fn coherent_engine_matches_reference_on_glyph_templates() {
    // Use the glyph templates as a real weight matrix (padded square).
    use pixel::dnn::dataset::{template_weights, GlyphDataset};
    let dataset = GlyphDataset::new(8, 6, Precision::new(4));
    let templates = template_weights(&dataset);
    let n = 6;
    // Project the 64-wide templates down to 6 features (block sums) to
    // form a 6×6 matrix.
    let w: Vec<Vec<f64>> = templates
        .iter()
        .map(|t| {
            t.chunks(t.len() / n)
                .take(n)
                .map(|c| c.iter().sum::<u64>() as f64 / 4.0)
                .collect()
        })
        .collect();
    let engine = CoherentEngine::synthesize(&w);
    let x = vec![1.0, 0.5, -0.25, 0.75, -1.0, 0.1];
    let optical = engine.apply(&x);
    for (i, row) in w.iter().enumerate() {
        let exact: f64 = row.iter().zip(&x).map(|(a, b)| a * b).sum();
        assert!(
            (optical[i] - exact).abs() < 1e-7,
            "row {i}: {} vs {exact}",
            optical[i]
        );
    }
}

#[test]
fn throughput_and_simulator_are_consistent() {
    let config = AcceleratorConfig::new(Design::Oo, 4, 16);
    let net = zoo::lenet();
    // The simulator's ideal-front-end total should track the analytic
    // latency the throughput model builds on.
    let (_, sim_total) = simulate_network(&config, &SimConfig::ideal(), &net);
    let single = batched(&config, &net, 1).batch_latency;
    let ratio = sim_total / single;
    assert!((0.6..=1.1).contains(&ratio), "ratio {ratio}");

    // Larger batches never reduce throughput.
    let mut last = 0.0;
    for b in [1usize, 4, 16, 64] {
        let t = batched(&config, &net, b).inferences_per_second;
        assert!(t >= last, "throughput regressed at batch {b}");
        last = t;
    }
}

#[test]
fn weight_streaming_feasible_at_max_fabric() {
    // The scaling bound and weight streaming compose: a maximal feasible
    // fabric can still be pre-loaded in reasonable time.
    use pixel::core::scaling::max_supported_tiles;
    use pixel::core::weight_streaming::{network_weight_load, totals};
    let max_tiles = max_supported_tiles(Design::Oo, 100_000).min(1024);
    let config = AcceleratorConfig::new(Design::Oo, 4, 16).with_tiles(max_tiles);
    let (_, t, _) = totals(&network_weight_load(&config, &zoo::vgg16()));
    // VGG16 carries ~135 M weights (FC1 dominates); on ≥1024 channels the
    // burst finishes in ~0.13 ms at 1 GHz — negligible next to inference.
    assert!(t.as_millis() < 1.0, "pre-load {} ms", t.as_millis());
}
