//! End-to-end observability: the global registry picks up counters and
//! spans from the instrumented crates, and stays a no-op while disabled.
//!
//! Everything lives in one test function because the global registry is
//! process-wide state; this file is its own test binary, so no other
//! test races it.

use pixel::core::config::{AcceleratorConfig, Design};
use pixel::core::functional_fabric::FunctionalFabric;
use pixel::dnn::inference::{conv2d, DirectMac, LayerWeights};
use pixel::dnn::layer::{Layer, Shape};
use pixel::dnn::tensor::Tensor;
use pixel::units::rng::SplitMix64;

fn run_fabric_conv() {
    let mut rng = SplitMix64::seed_from_u64(11);
    let layer = Layer::conv_padded("Conv", Shape::square(6, 2), 3, 3, 1, 1);
    let input = Tensor::from_fn(Shape::square(6, 2), |_, _, _| rng.range_u64(0, 15));
    let weights = LayerWeights::generate(&layer, || rng.range_u64(0, 15));
    for design in Design::ALL {
        let fabric = FunctionalFabric::new(AcceleratorConfig::new(design, 4, 4));
        let out = fabric.conv2d(&layer, &input, &weights).unwrap();
        let direct = conv2d(&layer, &input, &weights, &DirectMac).unwrap();
        assert_eq!(out, direct, "{design}");
    }
}

#[test]
fn global_registry_observes_the_instrumented_stack() {
    // Phase 1: disabled (the default) — instrumented code records nothing.
    assert!(!pixel::obs::enabled());
    run_fabric_conv();
    let quiet = pixel::obs::snapshot();
    assert!(quiet.counters.is_empty(), "{:?}", quiet.counters);
    assert!(quiet.spans.is_empty());

    // Phase 2: enabled — the same workload surfaces counters and spans
    // from the fabric, the per-design OMACs, and the analytic models.
    pixel::obs::enable();
    run_fabric_conv();
    let accel =
        pixel::core::accelerator::Accelerator::new(AcceleratorConfig::new(Design::Oo, 4, 8));
    let _report = accel.evaluate(&pixel::dnn::zoo::lenet());
    let snap = pixel::obs::snapshot();

    for counter in [
        "fabric.windows",
        "fabric.mac_ops",
        "fabric.transport_words",
        "omac.ee.mac_ops",
        "omac.ee.bit_toggles",
        "omac.oe.mac_ops",
        "omac.oe.mrr_slots",
        "omac.oo.mac_ops",
        "omac.oo.mzi_slots",
        "dse.model_evals",
        "dnn.analysis.layers",
    ] {
        assert!(
            snap.counter(counter).is_some_and(|v| v > 0),
            "missing counter {counter}: have {:?}",
            snap.counters.iter().map(|(n, _)| n).collect::<Vec<_>>()
        );
    }
    // Three designs × one conv each, 6×6 output → 36 windows per design.
    assert_eq!(snap.counter("fabric.windows"), Some(108));
    assert!(snap.span("fabric_conv2d").is_some_and(|s| s.count == 3));
    // The bit-true path is span-*nested*: phase children aggregate under
    // the conv parent in the span tree.
    assert!(snap
        .span("fabric_conv2d/plan")
        .is_some_and(|s| s.count == 3));
    assert!(snap
        .span("fabric_conv2d/rows")
        .is_some_and(|s| s.count == 3));
    // Analysis ran under the accelerator evaluation.
    assert!(snap.span("analyze").is_some());

    // Phase 3: disable again — recording stops but data is retained.
    pixel::obs::disable();
    run_fabric_conv();
    let frozen = pixel::obs::snapshot();
    assert_eq!(frozen.counter("fabric.windows"), Some(108));
    pixel::obs::reset();
    assert!(pixel::obs::snapshot().counters.is_empty());
}
