//! End-to-end fabric test: neurons fired over the MWSR waveguide, decoded
//! at the tiles, computed through the bit-true OMACs, and compared with a
//! direct convolution.

use pixel::core::config::{AcceleratorConfig, Design};
use pixel::core::interconnect::{Dimension, TileCoord, XyFabric};
use pixel::core::tile::Tile;
use pixel::photonics::photodetector::Photodetector;
use pixel::photonics::signal::PulseTrain;
use pixel::units::rng::SplitMix64;
use pixel::units::Power;

const BITS: usize = 8;

/// Fires one neuron word per tile across a row waveguide and checks every
/// tile's band decodes losslessly after waveguide attenuation.
#[test]
fn row_broadcast_survives_attenuation() {
    let fabric = XyFabric::new(1, 4, 2);
    let mut rng = SplitMix64::seed_from_u64(5);
    let words: Vec<Vec<u64>> = (0..4)
        .map(|_| (0..2).map(|_| rng.range_u64(0, 255)).collect())
        .collect();
    let per_tile: Vec<Vec<PulseTrain>> = words
        .iter()
        .map(|lanes| {
            lanes
                .iter()
                .map(|&w| PulseTrain::from_bits(w, BITS))
                .collect()
        })
        .collect();
    let signal = fabric.broadcast_row(&per_tile).expect("plan fits");

    let detector = Photodetector::default();
    for (tile, lanes) in words.iter().enumerate() {
        let band = fabric
            .tile_wavelengths(TileCoord { row: 0, col: tile }, Dimension::X)
            .expect("on fabric");
        for (lane, &expected) in lanes.iter().enumerate() {
            let train = signal.demux(band[lane]);
            let decoded = detector
                .detect_binary(&train, Power::from_microwatts(100.0))
                .expect("binary decode");
            assert_eq!(decoded, expected, "tile {tile} lane {lane}");
        }
    }
}

/// A 3×3 convolution window computed tile-by-tile through fired weights,
/// for each design, equals the direct integer result.
#[test]
fn tiles_compute_conv_windows_after_firing() {
    let mut rng = SplitMix64::seed_from_u64(11);
    let window: Vec<u64> = (0..9).map(|_| rng.range_u64(0, 15)).collect();
    let kernel: Vec<u64> = (0..9).map(|_| rng.range_u64(0, 15)).collect();
    let expected: u64 = window.iter().zip(&kernel).map(|(&a, &b)| a * b).sum();

    for design in Design::ALL {
        let mut tile = Tile::new(AcceleratorConfig::new(design, 4, 4), 9);
        tile.load_weights(&kernel);
        assert_eq!(tile.fire(&window), expected, "{design}");
    }
}

/// Wavelength reuse across rows: two different rows may use the same
/// channel indices because they ride different physical waveguides.
#[test]
fn rows_are_independent_waveguides() {
    let fabric = XyFabric::new(2, 2, 2);
    let row0 = vec![
        vec![
            PulseTrain::from_bits(0b1010, 4),
            PulseTrain::from_bits(1, 4),
        ],
        vec![
            PulseTrain::from_bits(0b0101, 4),
            PulseTrain::from_bits(2, 4),
        ],
    ];
    let row1 = vec![
        vec![
            PulseTrain::from_bits(0b1111, 4),
            PulseTrain::from_bits(3, 4),
        ],
        vec![
            PulseTrain::from_bits(0b0001, 4),
            PulseTrain::from_bits(0, 4),
        ],
    ];
    let s0 = fabric.broadcast_row(&row0).expect("row 0");
    let s1 = fabric.broadcast_row(&row1).expect("row 1");
    // Same wavelength index, different data, no interference.
    let id = fabric
        .tile_wavelengths(TileCoord { row: 0, col: 0 }, Dimension::X)
        .unwrap()[0];
    assert_eq!(s0.demux(id).to_bits(), Some(0b1010));
    assert_eq!(s1.demux(id).to_bits(), Some(0b1111));
}
