//! Smoke tests over the full figure/table regeneration pipeline: every
//! artifact renders, contains no NaN/inf, and keeps its qualitative
//! ordering.

use pixel::core::config::Design;
use pixel::core::dse;
use pixel::dnn::zoo;

#[test]
fn all_artifact_strings_render() {
    for (name, text) in [
        ("table1", pixel_bench::table1()),
        ("table2", pixel_bench::table2()),
        ("fig4", pixel_bench::fig4()),
        ("fig5", pixel_bench::fig5()),
        ("fig6", pixel_bench::fig6()),
        ("fig7", pixel_bench::fig7()),
        ("fig8", pixel_bench::fig8()),
        ("fig9", pixel_bench::fig9()),
        ("fig10", pixel_bench::fig10()),
        ("power", pixel_bench::power()),
        ("scaling", pixel_bench::scaling()),
        ("weights", pixel_bench::weights()),
        ("pam", pixel_bench::pam()),
        ("counts", pixel_bench::counts()),
        ("ablation", pixel_bench::ablation()),
        ("noise", pixel_bench::noise()),
        ("roofline", pixel_bench::roofline()),
    ] {
        assert!(!text.is_empty(), "{name} rendered empty");
        assert!(!text.contains("NaN"), "{name} contains NaN");
        assert!(!text.contains("inf"), "{name} contains inf");
        assert!(text.lines().count() > 2, "{name} suspiciously short");
    }
}

#[test]
fn fig5_components_cover_every_cell() {
    let nets = [zoo::alexnet(), zoo::lenet(), zoo::vgg16()];
    let bars = dse::fig5_component_energy(&nets, &[4, 8, 16]);
    // 3 networks × 3 designs × 3 bit widths.
    assert_eq!(bars.len(), 27);
    for bar in &bars {
        assert!(bar.breakdown.total().value() > 0.0);
        assert!(bar.breakdown.total().is_finite());
        if bar.design == Design::Ee {
            assert!(bar.breakdown.laser.value().abs() < 1e-18, "EE has no laser");
        }
    }
}

#[test]
fn fig7_and_fig10_are_normalized_to_ee() {
    let nets = zoo::all_networks();
    for points in [
        dse::fig7_normalized_energy(&nets, &[4, 16]),
        dse::fig10_normalized_edp(&nets, &[4, 16]),
    ] {
        for p in points.iter().filter(|p| p.design == Design::Ee) {
            assert!(
                (p.normalized - 1.0).abs() < 1e-12,
                "EE normalizes to 1.0, got {} for {}",
                p.normalized,
                p.network
            );
        }
        assert!(points.iter().all(|p| p.normalized.is_finite()));
    }
}

#[test]
fn fig8_covers_full_bits_range() {
    let nets = [zoo::lenet()];
    let bits: Vec<u32> = (1..=32).collect();
    let points = dse::fig8_latency_geomean(&nets, &bits);
    assert_eq!(points.len(), 3 * 32);
    assert!(points.iter().all(|p| p.latency_geomean > 0.0));
}

#[test]
fn table2_respects_paper_orderings() {
    let rows = dse::table2_breakdown();
    for net in ["ResNet-34", "GoogLeNet", "ZFNet"] {
        let get = |d: Design| {
            rows.iter()
                .find(|r| r.network == net && r.design == d)
                .unwrap()
                .breakdown
        };
        let (ee, oe, oo) = (get(Design::Ee), get(Design::Oe), get(Design::Oo));
        assert!(oe.mul < ee.mul, "{net}: optical mul wins");
        assert!(oo.add < oe.add, "{net}: MZI add wins");
        assert!(oo.laser > oe.laser, "{net}: OO laser premium");
        assert!(
            (oe.act.value() - oo.act.value()).abs() < 1e-15,
            "{net}: act identical"
        );
        assert!(
            oo.total() < oe.total() && oe.total() < ee.total(),
            "{net}: totals"
        );
    }
}
